#include "dse/explorer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "verify/verifier.hpp"

namespace dfc::dse {

using dfc::core::ConvPorts;
using dfc::core::NetworkSpec;
using dfc::core::PortPlan;

namespace {

std::vector<int> divisors_up_to(std::int64_t n, int cap) {
  std::vector<int> out;
  for (int d = 1; d <= n && d <= cap; ++d) {
    if (n % d == 0) out.push_back(d);
  }
  return out;
}

/// Shape/channel info of each conv layer, needed to enumerate options.
struct ConvSite {
  std::int64_t in_fm = 0;
  std::int64_t out_fm = 0;
  int taps = 0;
  std::int64_t in_plane = 0;
  std::int64_t out_plane = 0;
};

std::vector<ConvSite> conv_sites(const nn::Sequential& net, const Shape3& input_shape) {
  std::vector<ConvSite> sites;
  Shape3 shape = input_shape;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const nn::Layer& layer = net.layer(i);
    if (layer.kind() == nn::LayerKind::kLinear && shape.h * shape.w != 1) {
      shape = Shape3{shape.volume(), 1, 1};
    }
    if (layer.kind() == nn::LayerKind::kConv) {
      const auto& conv = dynamic_cast<const nn::Conv2d&>(layer);
      ConvSite s;
      s.in_fm = shape.c;
      s.out_fm = conv.out_channels();
      s.taps = conv.kh() * conv.kw();
      s.in_plane = shape.plane();
      const Shape3 os = conv.output_shape(shape);
      s.out_plane = os.plane();
      sites.push_back(s);
    }
    shape = layer.output_shape(shape);
  }
  return sites;
}

/// Cheap pruning score used only by the beam: DSP cost and stage interval of
/// one conv choice (mirrors the cost model's II-sharing rule).
struct PartialScore {
  double dsp = 0.0;
  std::int64_t interval = 0;
};

PartialScore score_choice(const ConvSite& site, const ConvPorts& ports) {
  const std::int64_t ii =
      std::max(site.out_fm / ports.out_ports, site.in_fm / ports.in_ports);
  const std::int64_t macs = site.out_fm * site.in_fm * site.taps;
  PartialScore s;
  s.dsp = static_cast<double>(dfc::ceil_div(macs, ii)) * 5.0;  // 3 DSP mul + 2 DSP add
  s.interval = std::max(site.in_plane * site.in_fm / ports.in_ports, site.out_plane * ii);
  return s;
}

}  // namespace

DseResult explore(const nn::Sequential& net, const Shape3& input_shape,
                  const DseOptions& options) {
  const std::vector<ConvSite> sites = conv_sites(net, input_shape);
  DFC_REQUIRE(!sites.empty(), "DSE needs at least one convolutional layer");

  // Per-site option lists.
  std::vector<std::vector<ConvPorts>> site_options;
  for (const ConvSite& s : sites) {
    std::vector<ConvPorts> opts;
    for (int ip : divisors_up_to(s.in_fm, options.max_ports)) {
      for (int op : divisors_up_to(s.out_fm, options.max_ports)) {
        opts.push_back(ConvPorts{ip, op, false});
      }
    }
    site_options.push_back(std::move(opts));
  }

  // Enumerate plans (optionally beam-pruned on a cheap DSP/interval score).
  struct Partial {
    std::vector<ConvPorts> choice;
    double dsp = 0.0;
    std::int64_t interval = 0;
  };
  std::vector<Partial> frontier{Partial{}};
  for (std::size_t si = 0; si < sites.size(); ++si) {
    std::vector<Partial> next;
    next.reserve(frontier.size() * site_options[si].size());
    for (const Partial& p : frontier) {
      for (const ConvPorts& opt : site_options[si]) {
        Partial q = p;
        q.choice.push_back(opt);
        const PartialScore sc = score_choice(sites[si], opt);
        q.dsp += sc.dsp;
        q.interval = std::max(q.interval, sc.interval);
        next.push_back(std::move(q));
      }
    }
    if (options.beam_width > 0 && next.size() > options.beam_width) {
      std::sort(next.begin(), next.end(), [](const Partial& a, const Partial& b) {
        if (a.interval != b.interval) return a.interval < b.interval;
        return a.dsp < b.dsp;
      });
      next.resize(options.beam_width);
    }
    frontier = std::move(next);
  }

  DseResult result;
  bool have_best = false;
  std::vector<DseCandidate> fitting;

  for (const Partial& p : frontier) {
    PortPlan plan;
    plan.conv = p.choice;
    ++result.candidates_evaluated;

    DseCandidate cand;
    cand.plan = plan;
    try {
      cand.spec = dfc::core::compile(net, input_shape, plan, "dse-candidate");
    } catch (const dfc::ConfigError&) {
      ++result.candidates_rejected;
      continue;  // adapter/divisibility constraints reject this plan
    }
    if (options.verify_candidates) {
      // Static legality first: a candidate carrying DF1xx errors would only
      // fail later (or deadlock in simulation) — reject before pricing it.
      const auto diags = dfc::verify::check_spec(cand.spec);
      const bool illegal = std::any_of(diags.begin(), diags.end(), [](const auto& d) {
        return d.severity == dfc::verify::Severity::kError;
      });
      if (illegal) {
        ++result.candidates_rejected;
        continue;
      }
    }
    cand.timing = estimate_timing(cand.spec);
    cand.resources = dfc::hw::estimate_design(cand.spec, options.cost_model).total;
    cand.fits = options.device.fits(cand.resources);
    if (!cand.fits) continue;
    ++result.candidates_fitting;

    const bool better =
        !have_best || cand.timing.interval_cycles < result.best.timing.interval_cycles ||
        (cand.timing.interval_cycles == result.best.timing.interval_cycles &&
         cand.resources.dsp < result.best.resources.dsp);
    if (better) {
      result.best = cand;
      have_best = true;
    }
    fitting.push_back(std::move(cand));
  }

  DFC_REQUIRE(have_best, "DSE found no design that fits the device");

  // Pareto frontier: ascending interval, strictly decreasing DSP.
  std::sort(fitting.begin(), fitting.end(), [](const DseCandidate& a, const DseCandidate& b) {
    if (a.timing.interval_cycles != b.timing.interval_cycles) {
      return a.timing.interval_cycles < b.timing.interval_cycles;
    }
    return a.resources.dsp < b.resources.dsp;
  });
  double best_dsp = std::numeric_limits<double>::infinity();
  for (auto& cand : fitting) {
    if (cand.resources.dsp < best_dsp) {
      best_dsp = cand.resources.dsp;
      result.pareto.push_back(std::move(cand));
    }
  }
  return result;
}

}  // namespace dfc::dse
