// Automated design-space exploration over per-layer port counts.
//
// The paper chooses port counts empirically ("we did not perform any DSE...
// Future work will address the automation of the DSE"). This module
// implements that future work: it enumerates the per-convolution-layer
// (IN_PORTS, OUT_PORTS) assignments that satisfy the interleave divisibility
// rules and the adapter constraints, prices each candidate with the hwmodel
// resource estimator, and selects the highest-throughput design that fits
// the device (ties broken by fewer resources).
//
// Exhaustive enumeration is exponential in the number of conv layers with
// many divisors, so a beam search bounds the frontier; for the paper-scale
// networks the exhaustive path is exact and fast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/compile.hpp"
#include "core/network_spec.hpp"
#include "dse/throughput_model.hpp"
#include "hwmodel/cost_model.hpp"
#include "nn/sequential.hpp"

namespace dfc::dse {

struct DseOptions {
  dfc::hw::Device device = dfc::hw::virtex7_485t();
  dfc::hw::CostModel cost_model{};
  /// Keep at most this many partial candidates per layer during the search;
  /// 0 means exhaustive.
  std::size_t beam_width = 0;
  /// Cap on ports per interface (fully parallel designs can explode).
  int max_ports = 64;
  /// Run the static verifier's spec checks (src/verify, DF1xx) on every
  /// compiled candidate and reject the ones carrying errors before pricing
  /// them — the ROADMAP's "reject illegal candidates without paying for
  /// simulation" filter.
  bool verify_candidates = true;
};

struct DseCandidate {
  dfc::core::PortPlan plan;
  dfc::core::NetworkSpec spec;
  TimingEstimate timing;
  dfc::hw::ResourceUsage resources;
  bool fits = false;
};

struct DseResult {
  DseCandidate best;
  std::size_t candidates_evaluated = 0;
  std::size_t candidates_fitting = 0;
  /// Candidates the static verifier rejected (verify_candidates only).
  std::size_t candidates_rejected = 0;
  /// The full Pareto frontier (throughput vs DSP usage) among fitting designs.
  std::vector<DseCandidate> pareto;
};

/// Explores port plans for `net` and returns the best fitting design.
/// Throws ConfigError if no candidate fits the device.
DseResult explore(const nn::Sequential& net, const Shape3& input_shape,
                  const DseOptions& options = {});

}  // namespace dfc::dse
