#include "dse/throughput_model.hpp"

#include <algorithm>

namespace dfc::dse {

using dfc::core::ConvLayerSpec;
using dfc::core::FcnLayerSpec;
using dfc::core::NetworkSpec;
using dfc::core::PoolLayerSpec;

TimingEstimate estimate_timing(const NetworkSpec& spec) {
  spec.validate();
  TimingEstimate est;

  est.stages.push_back({"dma-in", spec.input_shape.volume()});

  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const auto& layer = spec.layers[i];
    StageTiming st;
    st.name = "L" + std::to_string(i);
    if (const auto* conv = std::get_if<ConvLayerSpec>(&layer)) {
      const std::int64_t ingest = conv->in_shape.plane() * conv->in_shape.c / conv->in_ports;
      const std::int64_t compute = conv->out_shape().plane() * conv->initiation_interval();
      st.cycles_per_image = std::max(ingest, compute);
      st.name += ".conv";
    } else if (const auto* pool = std::get_if<PoolLayerSpec>(&layer)) {
      st.cycles_per_image = pool->in_shape.plane() * pool->in_shape.c / pool->ports;
      st.name += ".pool";
    } else {
      const auto& fcn = std::get<FcnLayerSpec>(layer);
      // Input phase dominates; emission of the previous image overlaps it
      // unless the core is tiny.
      st.cycles_per_image = std::max(fcn.in_count, fcn.out_count);
      st.name += ".fcn";
    }
    est.stages.push_back(st);
  }

  est.stages.push_back({"dma-out", spec.output_shape().volume()});

  est.interval_cycles = 0;
  for (std::size_t i = 0; i < est.stages.size(); ++i) {
    if (est.stages[i].cycles_per_image > est.interval_cycles) {
      est.interval_cycles = est.stages[i].cycles_per_image;
      est.bottleneck_stage = static_cast<std::int64_t>(i);
    }
  }
  return est;
}

}  // namespace dfc::dse
