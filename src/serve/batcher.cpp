#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dfc::serve {

DynamicBatcher::DynamicBatcher(BatcherPolicy policy) : policy_(policy) {
  DFC_REQUIRE(policy.max_batch_size > 0, "batcher max_batch_size must be positive");
}

bool DynamicBatcher::should_close(std::size_t queue_depth, std::uint64_t oldest_arrival_cycle,
                                  std::uint64_t now_cycle) const {
  if (queue_depth == 0) return false;
  if (queue_depth >= policy_.max_batch_size) return true;
  return now_cycle >= close_deadline(oldest_arrival_cycle);
}

std::uint64_t DynamicBatcher::close_deadline(std::uint64_t oldest_arrival_cycle) const {
  const std::uint64_t deadline = oldest_arrival_cycle + policy_.max_wait_cycles;
  return deadline < oldest_arrival_cycle ? kNever : deadline;  // saturate on overflow
}

std::size_t DynamicBatcher::take_count(std::size_t queue_depth) const {
  return std::min(queue_depth, policy_.max_batch_size);
}

}  // namespace dfc::serve
