// A pool of identical simulated FPGAs behind one serving endpoint.
//
// Each replica is a full AcceleratorHarness (its own SimContext, FIFOs and
// cores) built from the same NetworkSpec, so replicas are interchangeable
// and a batch's cycle cost is a pure function of its size: the simulator is
// deterministic and the design's timing is data-independent (README
// "Timing ≠ weights"). That purity is what keeps serving results
// reproducible while still running the heavy cycle-level simulations on
// worker threads (common/thread_pool):
//   * warm() measures service_cycles(1..max_batch) by fanning the batch
//     sizes out across the replica harnesses, one worker per replica;
//   * the serve event loop then consumes the memoized table, so the
//     simulated timeline never depends on host scheduling;
//   * execute() replays a planned timeline to produce real logits, replicas
//     in parallel, and cross-checks that every batch's measured cycles
//     match the plan — a built-in determinism audit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/builder.hpp"
#include "core/harness.hpp"
#include "serve/serve_stats.hpp"
#include "tensor/tensor.hpp"

namespace dfc::serve {

class ReplicaPool {
 public:
  /// Builds `replicas` accelerators from `spec`. Throws ConfigError on
  /// replicas == 0 or an invalid spec.
  ReplicaPool(const dfc::core::NetworkSpec& spec, std::size_t replicas,
              const dfc::core::BuildOptions& options = {});

  std::size_t size() const { return harnesses_.size(); }
  const dfc::core::NetworkSpec& spec() const { return spec_; }

  /// Cycles a replica needs to run a back-to-back batch of `n` images,
  /// memoized (first call per size simulates on replica 0).
  std::uint64_t service_cycles(std::size_t n);

  /// Pre-measures batch sizes 1..max_batch across the replica harnesses on
  /// `threads` workers (0 = auto, capped at the replica count — a harness
  /// is never shared between workers).
  void warm(std::size_t max_batch, std::size_t threads = 0);

  /// Largest batch size with a memoized service time (0 = nothing warmed).
  std::size_t warmed_batch_limit() const;

  /// Replays a planned timeline for real: every batch in `batch_records`
  /// runs on its assigned replica (same-replica batches in plan order,
  /// replicas in parallel) and writes per-request logits into `outcomes`
  /// (indexed by request id). Throws InternalError if a batch's measured
  /// cycles disagree with the plan's service window.
  void execute(const std::vector<BatchRecord>& batch_records,
               const std::vector<Tensor>& images,
               const std::vector<std::size_t>& request_image_index,
               std::vector<RequestOutcome>& outcomes, std::size_t threads = 0);

 private:
  std::uint64_t measure(std::size_t replica, std::size_t n);

  dfc::core::NetworkSpec spec_;
  std::vector<std::unique_ptr<dfc::core::AcceleratorHarness>> harnesses_;
  std::vector<std::uint64_t> service_cycles_;  ///< index n-1; 0 = unmeasured
};

}  // namespace dfc::serve
