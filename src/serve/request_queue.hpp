// Bounded, thread-safe admission queue for inference requests.
//
// The serving discipline is explicit overload shedding: when the queue is
// full the request is REJECTED immediately (typed result / OverloadError),
// never blocked — an open-loop client keeps sending regardless, and an
// unbounded or blocking queue would just convert overload into unbounded
// latency. Every operation is O(1) under one mutex; the deterministic serve
// simulation uses it single-threaded, while live producers may push from any
// number of threads (tests/test_serve.cpp exercises both).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/metrics.hpp"
#include "serve/load_generator.hpp"

namespace dfc::serve {

enum class Admission {
  kAccepted,
  kShed,  ///< queue full: rejected, counted, caller never blocks
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking admission: kShed (and a bumped shed counter) when full.
  Admission try_push(const Request& r);

  /// Throwing flavour of try_push for callers that treat overload as an
  /// exceptional path; throws dfc::OverloadError when the request is shed.
  void push(const Request& r);

  /// Pops the oldest request (FIFO), or nullopt when empty. Never blocks.
  std::optional<Request> try_pop();

  /// Arrival cycle of the oldest queued request (nullopt when empty) —
  /// what the batcher's max_wait deadline is measured against.
  std::optional<std::uint64_t> oldest_arrival_cycle() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size() == 0; }

  /// Requests rejected by try_push/push since construction.
  std::uint64_t shed_count() const;

  /// Registers this queue's metrics (admitted/shed counters, depth gauge) in
  /// `registry` and keeps them updated from every push/pop. The registry must
  /// outlive the queue.
  void attach_metrics(dfc::MetricsRegistry& registry);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Request> q_;
  std::uint64_t shed_ = 0;

  // Optional metrics hookup (null until attach_metrics); updated under mu_.
  dfc::Counter* admitted_metric_ = nullptr;
  dfc::Counter* shed_metric_ = nullptr;
  dfc::Gauge* depth_metric_ = nullptr;
};

}  // namespace dfc::serve
