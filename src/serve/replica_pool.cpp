#include "serve/replica_pool.hpp"

#include <algorithm>
#include <string>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace dfc::serve {

namespace {
// Random images for timing measurements. The design's cycle counts are
// data-independent, so any deterministic content works; seeded generation
// keeps warm() reproducible byte for byte.
std::vector<Tensor> timing_images(const dfc::core::NetworkSpec& spec, std::size_t count) {
  Rng rng(7);
  std::vector<Tensor> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Tensor t(spec.input_shape);
    for (float& v : t.flat()) v = rng.uniform(-1.0f, 1.0f);
    images.push_back(std::move(t));
  }
  return images;
}
}  // namespace

ReplicaPool::ReplicaPool(const dfc::core::NetworkSpec& spec, std::size_t replicas,
                         const dfc::core::BuildOptions& options)
    : spec_(spec) {
  DFC_REQUIRE(replicas > 0, "replica pool needs at least one replica");
  harnesses_.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    harnesses_.push_back(std::make_unique<dfc::core::AcceleratorHarness>(
        dfc::core::build_accelerator(spec_, options)));
  }
}

std::uint64_t ReplicaPool::measure(std::size_t replica, std::size_t n) {
  const auto images = timing_images(spec_, n);
  return harnesses_[replica]->run_batch(images).total_cycles();
}

std::uint64_t ReplicaPool::service_cycles(std::size_t n) {
  DFC_REQUIRE(n > 0, "service_cycles needs a non-empty batch");
  if (n > service_cycles_.size()) service_cycles_.resize(n, 0);
  if (service_cycles_[n - 1] == 0) service_cycles_[n - 1] = measure(0, n);
  return service_cycles_[n - 1];
}

void ReplicaPool::warm(std::size_t max_batch, std::size_t threads) {
  DFC_REQUIRE(max_batch > 0, "warm needs a positive max batch size");
  if (service_cycles_.size() < max_batch) service_cycles_.resize(max_batch, 0);
  // One worker per replica harness (a SimContext must never run on two
  // threads); worker w measures the sizes congruent to it. The table slots
  // are disjoint and the vector is pre-sized, so no synchronization is
  // needed, and the measured values are identical for any worker count.
  const std::size_t workers = std::min(threads == 0 ? default_worker_count() : threads, size());
  dfc::run_indexed(workers, workers, [&](std::size_t w) {
    for (std::size_t n = w + 1; n <= max_batch; n += workers) {
      if (service_cycles_[n - 1] == 0) service_cycles_[n - 1] = measure(w, n);
    }
  });
}

std::size_t ReplicaPool::warmed_batch_limit() const {
  std::size_t limit = 0;
  for (std::size_t n = 1; n <= service_cycles_.size(); ++n) {
    if (service_cycles_[n - 1] == 0) break;
    limit = n;
  }
  return limit;
}

void ReplicaPool::execute(const std::vector<BatchRecord>& batch_records,
                          const std::vector<Tensor>& images,
                          const std::vector<std::size_t>& request_image_index,
                          std::vector<RequestOutcome>& outcomes, std::size_t threads) {
  // Batches grouped per replica in plan order; replicas run in parallel.
  std::vector<std::vector<std::size_t>> per_replica(size());
  for (std::size_t b = 0; b < batch_records.size(); ++b) {
    DFC_REQUIRE(batch_records[b].replica < size(), "batch assigned to unknown replica");
    per_replica[batch_records[b].replica].push_back(b);
  }

  dfc::run_indexed(size(), threads, [&](std::size_t r) {
    for (const std::size_t b : per_replica[r]) {
      const BatchRecord& rec = batch_records[b];
      // A failed batch died mid-service (no outputs to replay) and a
      // corrupted one was rejected by detection; their requests get logits
      // from the retry batch, or none if the retry budget ran out.
      if (rec.failed || rec.corrupted) continue;
      std::vector<Tensor> batch_images;
      batch_images.reserve(rec.size());
      for (const std::uint64_t id : rec.request_ids) {
        batch_images.push_back(images.at(request_image_index.at(id)));
      }
      const dfc::core::BatchResult res = harnesses_[r]->run_batch(batch_images);
      // The plan was laid out from the memoized service table; a mismatch
      // here means the simulation is not reproducible — fail loudly.
      DFC_CHECK(res.total_cycles() == rec.service_cycles(),
                "replica " + std::to_string(r) + " batch " + std::to_string(rec.id) +
                    " took " + std::to_string(res.total_cycles()) + " cycles, planned " +
                    std::to_string(rec.service_cycles()));
      for (std::size_t j = 0; j < rec.request_ids.size(); ++j) {
        outcomes.at(rec.request_ids[j]).logits = res.outputs[j];
      }
    }
  });
}

}  // namespace dfc::serve
