#include "serve/serve_stats.hpp"

#include "common/table.hpp"
#include "core/harness.hpp"

namespace dfc::serve {

std::string ServeStats::render() const {
  auto us = [](double cycles) { return dfc::core::cycles_to_us(cycles); };
  AsciiTable t({"metric", "value"});
  t.add_row({"offered requests", std::to_string(offered_requests)});
  t.add_row({"completed", std::to_string(completed_requests)});
  t.add_row({"shed (queue full)", std::to_string(shed_requests)});
  t.add_row({"offered rate (req/s)", fmt_fixed(offered_rps, 0)});
  t.add_row({"sustained rate (req/s)", fmt_fixed(sustained_rps, 0)});
  t.add_row({"batches", std::to_string(batches)});
  t.add_row({"mean batch size", fmt_fixed(mean_batch_size, 2)});
  t.add_row({"max queue depth", std::to_string(max_queue_depth)});
  t.add_row({"mean queue depth", fmt_fixed(mean_queue_depth, 2)});
  t.add_row({"p50 latency (cycles)", std::to_string(p50_latency_cycles)});
  t.add_row({"p95 latency (cycles)", std::to_string(p95_latency_cycles)});
  t.add_row({"p99 latency (cycles)", std::to_string(p99_latency_cycles)});
  t.add_row({"p99.9 latency (cycles)", std::to_string(p999_latency_cycles)});
  t.add_row({"p50 latency (us)", fmt_fixed(us(static_cast<double>(p50_latency_cycles)), 3)});
  t.add_row({"p95 latency (us)", fmt_fixed(us(static_cast<double>(p95_latency_cycles)), 3)});
  t.add_row({"p99 latency (us)", fmt_fixed(us(static_cast<double>(p99_latency_cycles)), 3)});
  t.add_row({"p99.9 latency (us)", fmt_fixed(us(static_cast<double>(p999_latency_cycles)), 3)});
  t.add_row({"mean latency (us)", fmt_fixed(us(mean_latency_cycles), 3)});
  t.add_row({"makespan (cycles)", std::to_string(makespan_cycles)});
  // Resilience rows only appear once faults were in play, so the fault-free
  // table stays byte-identical to the pre-fault serving system.
  if (retried_requests + retry_attempts + failed_requests + failed_batches +
          corrupted_batches + quarantined_replicas >
      0) {
    t.add_row({"retried requests", std::to_string(retried_requests)});
    t.add_row({"retry attempts", std::to_string(retry_attempts)});
    t.add_row({"failed requests", std::to_string(failed_requests)});
    t.add_row({"failed batches", std::to_string(failed_batches)});
    t.add_row({"corrupted batches", std::to_string(corrupted_batches)});
    t.add_row({"quarantined replicas", std::to_string(quarantined_replicas)});
  }
  return t.render();
}

}  // namespace dfc::serve
