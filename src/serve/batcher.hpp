// Dynamic batching policy: when does a batch close?
//
// The paper's Fig. 6 shows per-image cost falling with batch size because
// the high-level pipeline amortizes fill/drain across the batch — but an
// online server cannot wait forever for a full batch. The classic dynamic-
// batching compromise closes a batch on whichever fires first:
//   * size trigger:   max_batch_size requests are waiting, or
//   * timeout trigger: the OLDEST waiting request has aged max_wait_cycles.
// max_wait therefore bounds the queueing delay any request pays to help its
// successors amortize; max_wait = 0 degenerates to "dispatch whatever is
// queued the moment a replica frees up" (still > batch 1 under backlog).
//
// The policy object is pure (no queue access, no side effects) so the close
// decision is unit-testable and the event loop stays the single source of
// state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dfc::serve {

struct BatcherPolicy {
  std::size_t max_batch_size = 8;
  std::uint64_t max_wait_cycles = 0;
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherPolicy policy);

  const BatcherPolicy& policy() const { return policy_; }

  /// True when a batch should close right now given the queue depth and the
  /// oldest queued request's arrival cycle.
  bool should_close(std::size_t queue_depth, std::uint64_t oldest_arrival_cycle,
                    std::uint64_t now_cycle) const;

  /// Cycle at which the timeout trigger fires for a request that arrived at
  /// `oldest_arrival_cycle` (the event loop's next wake-up when the size
  /// trigger cannot fire). Saturates instead of wrapping.
  std::uint64_t close_deadline(std::uint64_t oldest_arrival_cycle) const;

  /// Batch size to dispatch from `queue_depth` waiting requests.
  std::size_t take_count(std::size_t queue_depth) const;

  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

 private:
  BatcherPolicy policy_;
};

}  // namespace dfc::serve
