// The serving engine: request queue -> dynamic batcher -> replica pool.
//
// Serving is simulated as a deterministic discrete-event timeline in fabric
// cycles. The heavy cycle-level accelerator simulations are reduced to a
// memoized service-time table (batch size -> cycles; exact because the
// design's timing is data-independent), so the timeline itself is pure
// arithmetic: same load + same config => identical ServeStats on any
// machine with any DFCNN_SWEEP_THREADS. Worker threads are used where they
// cannot affect results — warming the table and replaying batches for real
// logits, one replica harness per worker.
//
// Event ordering within one cycle (fixed, hence deterministic):
//   1. arrivals are admitted or shed (admission sees the queue before any
//      dispatch in the same cycle, so a just-in-time arrival can still join
//      a closing batch);
//   2. batches close (size or timeout trigger) onto free replicas, lowest
//      replica index first.
#pragma once

#include <cstdint>
#include <vector>

#include "common/metrics.hpp"
#include "core/builder.hpp"
#include "fault/fault_plan.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/replica_pool.hpp"
#include "serve/serve_stats.hpp"

namespace dfc::serve {

/// Recovery policy for fault-mode serving (active when ServeConfig::faults
/// carries replica kills or batch corruptions): requests of a failed or
/// corrupted batch are re-enqueued with capped retry and exponential backoff,
/// while the offending replica is quarantined — drained and never dispatched
/// to again — so the pool degrades gracefully instead of wedging.
struct RecoveryPolicy {
  std::size_t max_retries = 2;         ///< re-enqueues per request before it fails
  std::uint64_t backoff_cycles = 256;  ///< first retry delay; doubles per attempt
  std::size_t quarantine_after_corruptions = 2;  ///< corrupted batches per replica
};

struct ServeConfig {
  std::size_t replicas = 2;
  std::size_t queue_capacity = 64;
  BatcherPolicy batcher{};
  /// Replay every planned batch on its replica to produce per-request
  /// logits (and cross-check planned vs measured cycles). Off by default:
  /// load studies only need the timeline.
  bool compute_outputs = false;
  /// Worker threads for warm()/execute() (0 = auto). Never changes results.
  std::size_t threads = 0;
  dfc::core::BuildOptions build{};

  /// Optional metrics sink (non-owning; must outlive the run). When set, the
  /// planner records admission/shed counters, queue depth, a batch-size
  /// histogram, a latency histogram in cycles, and replica busy cycles.
  /// Metric values are functions of the simulated timeline only, so they are
  /// identical across runs and DFCNN_SWEEP_THREADS settings.
  dfc::MetricsRegistry* metrics = nullptr;
  /// With `metrics` set and this nonzero, sample every metric into a CSV row
  /// (stamped with the fabric cycle) each time the timeline crosses a
  /// multiple of this many cycles; the rows land in ServeReport::metrics_csv.
  std::uint64_t metrics_snapshot_cycles = 0;

  /// Optional trace sink (non-owning; must outlive the run). When set, the
  /// planner emits request-lifecycle spans: a `queued` span per admission
  /// (arrival -> dispatch) and an `execute` span (dispatch -> completion) on
  /// the shared request track, `assemble`/`batch` spans on the batcher and
  /// per-replica tracks, and 1-cycle `shed` markers. Spans carry only
  /// timeline integers, so a trace of the same load + config is
  /// byte-identical across runs and DFCNN_SWEEP_THREADS; in the fault-free
  /// system each request's queued + execute span cycles sum exactly to its
  /// measured latency (retry backoff gaps appear as holes between spans).
  obs::TraceSink* trace = nullptr;

  /// Optional fault plan (non-owning; must outlive the run). The planner
  /// consumes its replica_kills and batch_corruptions; with it null or empty
  /// the timeline, metrics and stats are byte-identical to the fault-free
  /// system. Fifo faults in the plan are the campaign runner's business.
  const fault::FaultPlan* faults = nullptr;
  RecoveryPolicy recovery{};
};

/// Plans the serving timeline for `requests` (sorted by arrival, ids equal
/// to their index) against a service-time table where entry n-1 holds the
/// cycles of a size-n batch (all sizes up to the batcher's max must be
/// present). Pure and single-threaded; this is the function rate sweeps
/// fan out over.
ServeReport plan_serving(const std::vector<Request>& requests, const ServeConfig& config,
                         const std::vector<std::uint64_t>& service_table);

/// Owns the replica pool and runs complete load scenarios against it.
class InferenceServer {
 public:
  InferenceServer(const dfc::core::NetworkSpec& spec, const ServeConfig& config);

  /// Warm (if needed) + plan; with config.compute_outputs also replays the
  /// plan on the replicas to fill per-request logits.
  ServeReport run(const Load& load);

  ReplicaPool& pool() { return pool_; }
  const ServeConfig& config() const { return config_; }

 private:
  ServeConfig config_;
  ReplicaPool pool_;
};

}  // namespace dfc::serve
