// Result types of a serving run: per-request outcomes, per-batch records,
// and the aggregate ServeStats scorecard (offered vs sustained throughput,
// queue behaviour, shed count, latency percentiles in cycles).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfc::serve {

/// What happened to one request. Cycles are simulated fabric cycles; a shed
/// request has only its arrival.
struct RequestOutcome {
  std::uint64_t id = 0;
  std::uint64_t arrival_cycle = 0;
  bool shed = false;
  std::uint64_t dispatch_cycle = 0;    ///< batch close / replica start
  std::uint64_t completion_cycle = 0;  ///< last output word of its batch
  std::size_t batch_id = 0;
  std::size_t replica = 0;
  std::vector<float> logits;  ///< filled only when outputs are computed

  // Fault-mode recovery bookkeeping (zero in fault-free runs).
  std::uint32_t retries = 0;  ///< re-enqueues after a failed/corrupted batch
  bool failed = false;        ///< retry budget exhausted or pool fully dead

  /// Queueing + service latency (valid when !shed && !failed); the arrival is
  /// the original one, so retried requests pay their wasted attempts.
  std::uint64_t latency_cycles() const { return completion_cycle - arrival_cycle; }
};

/// One dispatched batch: which requests ran where, and for how long.
struct BatchRecord {
  std::size_t id = 0;
  std::size_t replica = 0;
  std::uint64_t dispatch_cycle = 0;
  std::uint64_t completion_cycle = 0;  ///< kill cycle for a failed batch
  std::vector<std::uint64_t> request_ids;

  // Fault-mode flags: a failed batch died with its replica mid-service; a
  // corrupted batch completed on time but detection rejected its outputs.
  bool failed = false;
  bool corrupted = false;

  std::size_t size() const { return request_ids.size(); }
  std::uint64_t service_cycles() const { return completion_cycle - dispatch_cycle; }
};

/// Aggregate scorecard of a load scenario.
struct ServeStats {
  std::string name;

  std::size_t offered_requests = 0;
  std::size_t completed_requests = 0;
  std::uint64_t shed_requests = 0;

  double offered_rps = 0.0;    ///< requests/s over the arrival span (100 MHz)
  double sustained_rps = 0.0;  ///< completions/s from first arrival to last completion

  std::size_t batches = 0;
  double mean_batch_size = 0.0;

  std::size_t max_queue_depth = 0;
  double mean_queue_depth = 0.0;  ///< time-weighted over the whole run

  std::uint64_t p50_latency_cycles = 0;
  std::uint64_t p95_latency_cycles = 0;
  std::uint64_t p99_latency_cycles = 0;
  /// Nearest-rank p99.9 (degenerates to the max below 1000 samples).
  std::uint64_t p999_latency_cycles = 0;
  double mean_latency_cycles = 0.0;

  std::uint64_t makespan_cycles = 0;  ///< first arrival -> last completion

  // Fault-mode counters (all zero in fault-free runs; render() hides them
  // then, keeping fault-free output byte-identical to the pre-fault system).
  std::uint64_t retried_requests = 0;    ///< requests re-enqueued at least once
  std::uint64_t retry_attempts = 0;      ///< total re-enqueues
  std::size_t failed_requests = 0;       ///< retry budget exhausted / pool dead
  std::size_t failed_batches = 0;        ///< batches killed mid-service
  std::size_t corrupted_batches = 0;     ///< batches rejected by detection
  std::size_t quarantined_replicas = 0;  ///< replicas removed from the pool

  /// ASCII table for the CLI (latency shown in both cycles and us).
  std::string render() const;
};

/// Everything a serving run produces. Outcomes are indexed by request id.
struct ServeReport {
  ServeStats stats;
  std::vector<RequestOutcome> outcomes;
  std::vector<BatchRecord> batch_records;
  /// Periodic metric snapshots (CSV text, header + one row per sample);
  /// empty unless ServeConfig::metrics_snapshot_cycles is set.
  std::string metrics_csv;
};

}  // namespace dfc::serve
