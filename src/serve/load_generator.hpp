// Open-loop load generation for the serving subsystem.
//
// "Open loop" means arrivals are driven by an external clock, not by the
// service finishing previous requests: a saturated server keeps receiving
// work and must shed it, exactly the regime where queueing delay and tail
// latency appear. Arrival times are simulated cycles of the 100 MHz fabric
// clock — there is no wall-clock anywhere in the model, so a load scenario
// is a pure function of its LoadSpec (seed included) and replays bit-
// identically on any machine.
#pragma once

#include <cstdint>
#include <vector>

#include "core/network_spec.hpp"
#include "tensor/tensor.hpp"

namespace dfc::serve {

/// One inference request: an image (by index into the load's image set)
/// arriving at a known simulated cycle. Ids are assigned in arrival order,
/// so FIFO service implies dispatch in id order.
struct Request {
  std::uint64_t id = 0;
  std::uint64_t arrival_cycle = 0;
  std::size_t image_index = 0;
};

enum class ArrivalProcess {
  kPoisson,  ///< exponential inter-arrival gaps (bursty, memoryless)
  kUniform,  ///< evenly spaced arrivals at the offered rate
};

struct LoadSpec {
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  double rate_images_per_second = 1000.0;  ///< offered rate at the 100 MHz clock
  std::size_t request_count = 1000;
  std::uint64_t seed = 7;
  /// Distinct images generated and cycled over (keeps memory bounded for
  /// long scenarios; timing is data-independent anyway).
  std::size_t distinct_images = 16;
};

/// A fully materialized scenario: the image pool plus every request with its
/// arrival cycle, sorted by (arrival_cycle, id).
struct Load {
  std::vector<Tensor> images;
  std::vector<Request> requests;
};

/// Expands a LoadSpec against a design's input shape. Deterministic per
/// spec/seed. Throws ConfigError on a non-positive rate or zero requests.
Load generate_load(const dfc::core::NetworkSpec& spec, const LoadSpec& load);

}  // namespace dfc::serve
