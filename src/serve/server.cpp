#include "serve/server.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "core/harness.hpp"
#include "serve/request_queue.hpp"

namespace dfc::serve {

namespace {

constexpr std::uint64_t kNever = DynamicBatcher::kNever;

ServeStats summarize(const std::vector<Request>& requests,
                     const std::vector<RequestOutcome>& outcomes,
                     const std::vector<BatchRecord>& batches, std::size_t max_queue_depth,
                     double depth_cycle_area, std::size_t quarantined_replicas) {
  ServeStats s;
  s.offered_requests = requests.size();
  s.batches = batches.size();
  s.max_queue_depth = max_queue_depth;
  s.quarantined_replicas = quarantined_replicas;

  const std::uint64_t first_arrival = requests.front().arrival_cycle;
  const std::uint64_t last_arrival = requests.back().arrival_cycle;
  std::uint64_t last_completion = last_arrival;

  std::vector<std::uint64_t> latencies;
  latencies.reserve(outcomes.size());
  double latency_sum = 0.0;
  std::size_t batched_requests = 0;
  for (const RequestOutcome& o : outcomes) {
    if (o.retries > 0) {
      ++s.retried_requests;
      s.retry_attempts += o.retries;
    }
    if (o.shed) {
      ++s.shed_requests;
      continue;
    }
    if (o.failed) {
      ++s.failed_requests;
      continue;
    }
    ++s.completed_requests;
    latencies.push_back(o.latency_cycles());
    latency_sum += static_cast<double>(o.latency_cycles());
    last_completion = std::max(last_completion, o.completion_cycle);
  }
  for (const BatchRecord& b : batches) {
    batched_requests += b.size();
    if (b.failed) ++s.failed_batches;
    if (b.corrupted) ++s.corrupted_batches;
  }
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(batched_requests) / static_cast<double>(s.batches)
                    : 0.0;

  s.makespan_cycles = last_completion - first_arrival;
  const double arrival_span =
      static_cast<double>(std::max<std::uint64_t>(last_arrival - first_arrival, 1));
  const double total_span = static_cast<double>(std::max<std::uint64_t>(s.makespan_cycles, 1));
  s.offered_rps = static_cast<double>(s.offered_requests) /
                  dfc::core::cycles_to_seconds(arrival_span);
  s.sustained_rps = static_cast<double>(s.completed_requests) /
                    dfc::core::cycles_to_seconds(total_span);
  s.mean_queue_depth = depth_cycle_area / total_span;

  const LatencyPercentiles lp = latency_percentiles(latencies);
  s.p50_latency_cycles = lp.p50;
  s.p95_latency_cycles = lp.p95;
  s.p99_latency_cycles = lp.p99;
  s.p999_latency_cycles = lp.p999;
  s.mean_latency_cycles =
      latencies.empty() ? 0.0 : latency_sum / static_cast<double>(latencies.size());
  return s;
}

}  // namespace

ServeReport plan_serving(const std::vector<Request>& requests, const ServeConfig& config,
                         const std::vector<std::uint64_t>& service_table) {
  DFC_REQUIRE(!requests.empty(), "plan_serving needs at least one request");
  DFC_REQUIRE(config.replicas > 0, "plan_serving needs at least one replica");
  DFC_REQUIRE(service_table.size() >= config.batcher.max_batch_size,
              "service table must cover batch sizes up to max_batch_size");
  for (std::size_t n = 0; n < config.batcher.max_batch_size; ++n) {
    DFC_REQUIRE(service_table[n] > 0, "service table entry for batch size " +
                                          std::to_string(n + 1) + " is unmeasured");
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    DFC_REQUIRE(requests[i].id == i, "request ids must equal their index");
    DFC_REQUIRE(i == 0 || requests[i - 1].arrival_cycle <= requests[i].arrival_cycle,
                "requests must be sorted by arrival cycle");
  }

  // Fault mode is active only when the plan actually targets serving; the
  // fault-free path below is then byte-identical to the pre-fault planner
  // (same events, same metrics, same stats).
  const bool fault_mode =
      config.faults != nullptr && (!config.faults->replica_kills.empty() ||
                                   !config.faults->batch_corruptions.empty());

  const DynamicBatcher batcher(config.batcher);
  RequestQueue queue(config.queue_capacity);
  std::vector<std::uint64_t> busy_until(config.replicas, 0);

  // Per-replica death cycle (kNever = healthy). A scheduled kill from the
  // fault plan sets it up front; a corruption quarantine lowers it to "now"
  // the moment the replica crosses the corrupted-batch threshold.
  std::vector<std::uint64_t> kill_cycle(config.replicas, kNever);
  std::vector<bool> dead(config.replicas, false);
  std::vector<std::size_t> corruptions(config.replicas, 0);
  std::vector<std::size_t> dispatch_ordinal(config.replicas, 0);
  std::set<std::pair<std::size_t, std::size_t>> corrupt_batches;  // (replica, nth dispatch)
  if (fault_mode) {
    for (const fault::ReplicaKillSpec& k : config.faults->replica_kills) {
      DFC_REQUIRE(k.replica < config.replicas, "replica kill targets unknown replica");
      kill_cycle[k.replica] = std::min(kill_cycle[k.replica], k.cycle);
    }
    for (const fault::BatchCorruptSpec& c : config.faults->batch_corruptions) {
      DFC_REQUIRE(c.replica < config.replicas, "batch corruption targets unknown replica");
      corrupt_batches.insert({c.replica, c.nth_batch});
    }
  }
  std::size_t quarantined = 0;

  // Optional metrics hookup: every figure below is derived from the simulated
  // timeline (no wall clock), so the registry contents are deterministic.
  dfc::Counter* batches_metric = nullptr;
  dfc::Counter* completed_metric = nullptr;
  dfc::Counter* replica_busy_metric = nullptr;
  dfc::Histogram* batch_size_metric = nullptr;
  dfc::Histogram* latency_metric = nullptr;
  dfc::Counter* retry_metric = nullptr;
  dfc::Counter* failed_requests_metric = nullptr;
  dfc::Counter* failed_batches_metric = nullptr;
  dfc::Counter* corrupted_batches_metric = nullptr;
  dfc::Gauge* quarantined_metric = nullptr;
  if (config.metrics != nullptr) {
    queue.attach_metrics(*config.metrics);
    batches_metric = &config.metrics->counter("serve_batches_total", "Batches dispatched");
    completed_metric =
        &config.metrics->counter("serve_requests_completed_total", "Requests completed");
    replica_busy_metric = &config.metrics->counter(
        "serve_replica_busy_cycles_total", "Cycles replicas spent executing batches");
    batch_size_metric = &config.metrics->histogram(
        "serve_batch_size", "Dispatched batch sizes",
        dfc::linear_buckets(1.0, 1.0, config.batcher.max_batch_size));
    latency_metric = &config.metrics->histogram(
        "serve_latency_cycles", "Request latency (arrival to completion) in fabric cycles",
        dfc::exponential_buckets(256.0, 2.0, 16));
    if (fault_mode) {
      // Registered only in fault mode so fault-free registries (and their
      // snapshot CSV columns) stay byte-identical to the pre-fault system.
      retry_metric =
          &config.metrics->counter("serve_retry_attempts_total", "Requests re-enqueued");
      failed_requests_metric = &config.metrics->counter(
          "serve_failed_requests_total", "Requests whose retry budget ran out");
      failed_batches_metric = &config.metrics->counter("serve_failed_batches_total",
                                                       "Batches killed mid-service");
      corrupted_batches_metric = &config.metrics->counter(
          "serve_corrupted_batches_total", "Batches rejected by output detection");
      quarantined_metric = &config.metrics->gauge("serve_quarantined_replicas",
                                                  "Replicas removed from the pool");
    }
  }

  // Optional request-lifecycle spans. One shared track for request phases
  // (async begin/end pairs keyed by phase + id, so overlapping requests
  // coexist), one for batch assembly, one per replica. Entities are
  // registered lazily here so an unused sink stays empty.
  obs::TraceSink* trace = config.trace;
  std::uint32_t req_entity = 0;
  std::uint32_t batcher_entity = 0;
  std::vector<std::uint32_t> replica_entities;
  if (trace != nullptr) {
    req_entity = trace->register_entity("serve.requests", obs::EntityKind::kServe);
    batcher_entity = trace->register_entity("serve.batcher", obs::EntityKind::kServe);
    replica_entities.reserve(config.replicas);
    for (std::size_t r = 0; r < config.replicas; ++r) {
      replica_entities.push_back(
          trace->register_entity("serve.replica" + std::to_string(r), obs::EntityKind::kServe));
    }
  }
  auto span = [&](std::uint32_t entity, obs::EventKind kind, std::uint64_t cycle,
                  obs::SpanPhase phase, std::uint64_t id) {
    if (trace != nullptr) trace->record(entity, kind, cycle, obs::span_value(phase, id));
  };

  // Periodic CSV snapshots of the registry, stamped with the fabric cycle.
  std::unique_ptr<CsvWriter> snapshot_csv;
  std::uint64_t next_snapshot = 0;
  if (config.metrics != nullptr && config.metrics_snapshot_cycles > 0) {
    std::vector<std::string> columns{"cycle"};
    for (const auto& [name, value] : config.metrics->snapshot()) columns.push_back(name);
    snapshot_csv = std::make_unique<CsvWriter>(columns);
    next_snapshot = requests.front().arrival_cycle;
  }
  auto take_snapshots_up_to = [&](std::uint64_t cycle) {
    if (snapshot_csv == nullptr) return;
    while (next_snapshot <= cycle) {
      std::vector<std::string> cells;
      cells.push_back(std::to_string(next_snapshot));
      for (const auto& [name, value] : config.metrics->snapshot()) {
        std::ostringstream os;
        os << value;
        cells.push_back(os.str());
      }
      snapshot_csv->row(cells);
      next_snapshot += config.metrics_snapshot_cycles;
    }
  };

  ServeReport report;
  report.outcomes.resize(requests.size());
  for (const Request& r : requests) {
    report.outcomes[r.id].id = r.id;
    report.outcomes[r.id].arrival_cycle = r.arrival_cycle;
  }

  std::size_t next_arrival = 0;
  std::uint64_t now = requests.front().arrival_cycle;
  std::size_t max_depth = 0;
  double depth_cycle_area = 0.0;
  std::uint64_t retry_shed = 0;

  // Fault-mode bookkeeping: batches awaiting their verdict (finalize cycle,
  // batch id) and requests waiting out a retry backoff (ready cycle, id).
  // Both std::set — event order is deterministic by construction.
  std::set<std::pair<std::uint64_t, std::size_t>> pending_verdicts;
  std::set<std::pair<std::uint64_t, std::uint64_t>> retry_backlog;

  auto replica_dead = [&](std::size_t r) { return fault_mode && kill_cycle[r] <= now; };

  auto lowest_free_replica = [&]() -> std::size_t {
    for (std::size_t r = 0; r < busy_until.size(); ++r) {
      if (busy_until[r] <= now && !replica_dead(r)) return r;
    }
    return busy_until.size();  // none free
  };

  auto mark_dead_replicas = [&] {
    if (!fault_mode) return;
    for (std::size_t r = 0; r < kill_cycle.size(); ++r) {
      if (kill_cycle[r] <= now && !dead[r]) {
        dead[r] = true;
        ++quarantined;
        if (quarantined_metric != nullptr) {
          quarantined_metric->set(static_cast<double>(quarantined));
        }
      }
    }
  };

  // Request-level recovery: re-enqueue with exponential backoff until the
  // retry budget is spent, then give up on the request.
  auto retry_or_fail = [&](std::uint64_t id) {
    RequestOutcome& o = report.outcomes[id];
    if (o.retries >= config.recovery.max_retries) {
      o.failed = true;
      if (failed_requests_metric != nullptr) failed_requests_metric->inc();
      return;
    }
    ++o.retries;
    const std::uint64_t backoff =
        config.recovery.backoff_cycles << std::min<std::uint32_t>(o.retries - 1, 32);
    retry_backlog.insert({now + backoff, id});
    if (retry_metric != nullptr) retry_metric->inc();
  };

  // Deliver verdicts for batches whose service interval has elapsed: clean
  // batches complete their requests; failed/corrupted ones send every rider
  // back through retry_or_fail and feed the quarantine counter.
  auto finalize_due_batches = [&] {
    while (!pending_verdicts.empty() && pending_verdicts.begin()->first <= now) {
      const std::size_t bid = pending_verdicts.begin()->second;
      pending_verdicts.erase(pending_verdicts.begin());
      const BatchRecord& rec = report.batch_records[bid];
      if (replica_busy_metric != nullptr) replica_busy_metric->inc(rec.service_cycles());
      if (rec.failed || rec.corrupted) {
        if (rec.failed && failed_batches_metric != nullptr) failed_batches_metric->inc();
        if (rec.corrupted) {
          if (corrupted_batches_metric != nullptr) corrupted_batches_metric->inc();
          if (++corruptions[rec.replica] >= config.recovery.quarantine_after_corruptions) {
            kill_cycle[rec.replica] = std::min(kill_cycle[rec.replica], now);
          }
        }
        for (const std::uint64_t id : rec.request_ids) retry_or_fail(id);
      } else if (config.metrics != nullptr) {
        completed_metric->inc(rec.size());
        for (const std::uint64_t id : rec.request_ids) {
          latency_metric->observe(static_cast<double>(report.outcomes[id].latency_cycles()));
        }
      }
    }
  };

  auto dispatch_ready_batches = [&] {
    while (true) {
      const auto oldest = queue.oldest_arrival_cycle();
      if (!oldest) return;
      const std::size_t replica = lowest_free_replica();
      if (replica == busy_until.size()) return;
      if (!batcher.should_close(queue.size(), *oldest, now)) return;

      BatchRecord rec;
      rec.id = report.batch_records.size();
      rec.replica = replica;
      rec.dispatch_cycle = now;
      const std::uint64_t assemble_from = *oldest;
      const std::size_t k = batcher.take_count(queue.size());
      rec.completion_cycle = now + service_table[k - 1];
      if (fault_mode) {
        if (kill_cycle[replica] <= rec.completion_cycle) {
          // The replica dies mid-service: the batch is lost at the kill
          // cycle and the replica never comes back.
          rec.failed = true;
          rec.completion_cycle = kill_cycle[replica];
        } else if (corrupt_batches.count({replica, dispatch_ordinal[replica]}) > 0) {
          // Service completes on time but output detection rejects it.
          rec.corrupted = true;
        }
        ++dispatch_ordinal[replica];
      }
      rec.request_ids.reserve(k);
      for (std::size_t j = 0; j < k; ++j) {
        const Request r = *queue.try_pop();
        rec.request_ids.push_back(r.id);
        RequestOutcome& o = report.outcomes[r.id];
        o.dispatch_cycle = now;
        o.completion_cycle = rec.completion_cycle;
        o.batch_id = rec.id;
        o.replica = replica;
        // The queued span closes at dispatch and execute runs to the known
        // completion (or kill) cycle — together they cover arrival ->
        // completion with no gap, the span-exactness contract.
        span(req_entity, obs::EventKind::kSpanEnd, now, obs::SpanPhase::kQueued, r.id);
        span(req_entity, obs::EventKind::kSpanBegin, now, obs::SpanPhase::kExecute, r.id);
        span(req_entity, obs::EventKind::kSpanEnd, rec.completion_cycle,
             obs::SpanPhase::kExecute, r.id);
      }
      if (trace != nullptr) {
        // Assembly: the oldest rider's wait defines how long the batch took
        // to fill; the replica track shows the service interval.
        span(batcher_entity, obs::EventKind::kSpanBegin, assemble_from,
             obs::SpanPhase::kAssemble, rec.id);
        span(batcher_entity, obs::EventKind::kSpanEnd, now, obs::SpanPhase::kAssemble, rec.id);
        span(replica_entities[replica], obs::EventKind::kSpanBegin, now,
             obs::SpanPhase::kBatch, rec.id);
        span(replica_entities[replica], obs::EventKind::kSpanEnd, rec.completion_cycle,
             obs::SpanPhase::kBatch, rec.id);
      }
      busy_until[replica] = rec.completion_cycle;
      if (config.metrics != nullptr) {
        batches_metric->inc();
        batch_size_metric->observe(static_cast<double>(k));
        if (!fault_mode) {
          // Fault-free fast path: the verdict is known at dispatch, so the
          // completion metrics land here exactly as before faults existed.
          completed_metric->inc(k);
          replica_busy_metric->inc(rec.service_cycles());
          for (const std::uint64_t id : rec.request_ids) {
            latency_metric->observe(
                static_cast<double>(report.outcomes[id].latency_cycles()));
          }
        }
      }
      if (fault_mode) pending_verdicts.insert({rec.completion_cycle, rec.id});
      report.batch_records.push_back(std::move(rec));
    }
  };

  auto any_replica_busy = [&] {
    return std::any_of(busy_until.begin(), busy_until.end(),
                       [&](std::uint64_t b) { return b > now; });
  };

  while (next_arrival < requests.size() || !queue.empty() || any_replica_busy() ||
         !retry_backlog.empty()) {
    // Next event: an arrival, a replica completion, a retry coming off its
    // backoff, or — when a replica is already free and the queue is merely
    // waiting to fill — the batcher's timeout deadline.
    std::uint64_t t = kNever;
    if (next_arrival < requests.size()) {
      t = std::min(t, requests[next_arrival].arrival_cycle);
    }
    for (const std::uint64_t b : busy_until) {
      if (b > now) t = std::min(t, b);
    }
    if (!retry_backlog.empty()) t = std::min(t, retry_backlog.begin()->first);
    if (const auto oldest = queue.oldest_arrival_cycle();
        oldest && lowest_free_replica() < busy_until.size()) {
      t = std::min(t, batcher.close_deadline(*oldest));
    }
    if (t == kNever) {
      // Only possible once every replica is dead: nothing can ever complete,
      // so drain what is left and degrade gracefully instead of wedging.
      DFC_CHECK(fault_mode, "serve event loop lost its next event");
      while (const auto r = queue.try_pop()) {
        report.outcomes[r->id].failed = true;
        if (failed_requests_metric != nullptr) failed_requests_metric->inc();
        // The request dies in the queue: close its span at the drain cycle.
        span(req_entity, obs::EventKind::kSpanEnd, now, obs::SpanPhase::kQueued, r->id);
      }
      for (const auto& [ready, id] : retry_backlog) {
        (void)ready;
        report.outcomes[id].failed = true;
        if (failed_requests_metric != nullptr) failed_requests_metric->inc();
      }
      retry_backlog.clear();
      while (next_arrival < requests.size()) {
        report.outcomes[requests[next_arrival].id].failed = true;
        if (failed_requests_metric != nullptr) failed_requests_metric->inc();
        ++next_arrival;
      }
      break;
    }
    DFC_CHECK(t >= now, "serve event loop lost its next event");

    // Snapshot points strictly before t see the state after all events <= t-1.
    if (t > 0) take_snapshots_up_to(t - 1);

    depth_cycle_area += static_cast<double>(queue.size()) * static_cast<double>(t - now);
    now = t;

    // Fixed per-cycle order: verdicts first (frees replicas, schedules
    // retries), then fresh arrivals, then due retries, then dispatch.
    finalize_due_batches();
    mark_dead_replicas();

    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_cycle == now) {
      const Request& r = requests[next_arrival];
      if (queue.try_push(r) == Admission::kShed) {
        report.outcomes[r.id].shed = true;
        span(req_entity, obs::EventKind::kSpanBegin, now, obs::SpanPhase::kShed, r.id);
      } else {
        span(req_entity, obs::EventKind::kSpanBegin, now, obs::SpanPhase::kQueued, r.id);
      }
      ++next_arrival;
      max_depth = std::max(max_depth, queue.size());
    }
    while (!retry_backlog.empty() && retry_backlog.begin()->first <= now) {
      const std::uint64_t id = retry_backlog.begin()->second;
      retry_backlog.erase(retry_backlog.begin());
      const Request retry{id, now, requests[id].image_index};
      if (queue.try_push(retry) == Admission::kShed) {
        // A retry shed by a full queue is terminal — the request failed.
        report.outcomes[id].failed = true;
        ++retry_shed;
        if (failed_requests_metric != nullptr) failed_requests_metric->inc();
        span(req_entity, obs::EventKind::kSpanBegin, now, obs::SpanPhase::kShed, id);
      } else {
        span(req_entity, obs::EventKind::kSpanBegin, now, obs::SpanPhase::kQueued, id);
      }
      max_depth = std::max(max_depth, queue.size());
    }
    dispatch_ready_batches();
  }

  // An in-flight batch keeps its replica busy, and a busy replica keeps the
  // loop alive until its completion event — so every batch has its verdict.
  DFC_CHECK(pending_verdicts.empty(), "serve loop exited with unfinalized batches");
  mark_dead_replicas();

  take_snapshots_up_to(now);
  if (snapshot_csv != nullptr) report.metrics_csv = snapshot_csv->str();

  report.stats = summarize(requests, report.outcomes, report.batch_records, max_depth,
                           depth_cycle_area, quarantined);
  DFC_CHECK(report.stats.shed_requests + retry_shed == queue.shed_count(),
            "outcome shed flags disagree with the queue's shed counter");
  return report;
}

InferenceServer::InferenceServer(const dfc::core::NetworkSpec& spec, const ServeConfig& config)
    : config_(config), pool_(spec, config.replicas, config.build) {}

ServeReport InferenceServer::run(const Load& load) {
  if (config_.metrics != nullptr) {
    config_.metrics->gauge("serve_replicas", "Replica accelerators behind the endpoint")
        .set(static_cast<double>(pool_.size()));
  }
  if (pool_.warmed_batch_limit() < config_.batcher.max_batch_size) {
    pool_.warm(config_.batcher.max_batch_size, config_.threads);
  }
  std::vector<std::uint64_t> table;
  table.reserve(config_.batcher.max_batch_size);
  for (std::size_t n = 1; n <= config_.batcher.max_batch_size; ++n) {
    table.push_back(pool_.service_cycles(n));
  }

  ServeReport report = plan_serving(load.requests, config_, table);
  report.stats.name = pool_.spec().name;

  if (config_.compute_outputs) {
    std::vector<std::size_t> request_image_index(load.requests.size());
    for (const Request& r : load.requests) request_image_index[r.id] = r.image_index;
    pool_.execute(report.batch_records, load.images, request_image_index, report.outcomes,
                  config_.threads);
  }
  return report;
}

}  // namespace dfc::serve
