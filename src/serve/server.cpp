#include "serve/server.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "common/csv.hpp"
#include "common/math_util.hpp"
#include "core/harness.hpp"
#include "serve/request_queue.hpp"

namespace dfc::serve {

namespace {

constexpr std::uint64_t kNever = DynamicBatcher::kNever;

ServeStats summarize(const std::vector<Request>& requests,
                     const std::vector<RequestOutcome>& outcomes,
                     const std::vector<BatchRecord>& batches, std::size_t max_queue_depth,
                     double depth_cycle_area) {
  ServeStats s;
  s.offered_requests = requests.size();
  s.batches = batches.size();
  s.max_queue_depth = max_queue_depth;

  const std::uint64_t first_arrival = requests.front().arrival_cycle;
  const std::uint64_t last_arrival = requests.back().arrival_cycle;
  std::uint64_t last_completion = last_arrival;

  std::vector<std::uint64_t> latencies;
  latencies.reserve(outcomes.size());
  double latency_sum = 0.0;
  std::size_t batched_requests = 0;
  for (const RequestOutcome& o : outcomes) {
    if (o.shed) {
      ++s.shed_requests;
      continue;
    }
    ++s.completed_requests;
    latencies.push_back(o.latency_cycles());
    latency_sum += static_cast<double>(o.latency_cycles());
    last_completion = std::max(last_completion, o.completion_cycle);
  }
  for (const BatchRecord& b : batches) batched_requests += b.size();
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(batched_requests) / static_cast<double>(s.batches)
                    : 0.0;

  s.makespan_cycles = last_completion - first_arrival;
  const double arrival_span =
      static_cast<double>(std::max<std::uint64_t>(last_arrival - first_arrival, 1));
  const double total_span = static_cast<double>(std::max<std::uint64_t>(s.makespan_cycles, 1));
  s.offered_rps = static_cast<double>(s.offered_requests) /
                  dfc::core::cycles_to_seconds(arrival_span);
  s.sustained_rps = static_cast<double>(s.completed_requests) /
                    dfc::core::cycles_to_seconds(total_span);
  s.mean_queue_depth = depth_cycle_area / total_span;

  const LatencyPercentiles lp = latency_percentiles(latencies);
  s.p50_latency_cycles = lp.p50;
  s.p95_latency_cycles = lp.p95;
  s.p99_latency_cycles = lp.p99;
  s.mean_latency_cycles =
      latencies.empty() ? 0.0 : latency_sum / static_cast<double>(latencies.size());
  return s;
}

}  // namespace

ServeReport plan_serving(const std::vector<Request>& requests, const ServeConfig& config,
                         const std::vector<std::uint64_t>& service_table) {
  DFC_REQUIRE(!requests.empty(), "plan_serving needs at least one request");
  DFC_REQUIRE(config.replicas > 0, "plan_serving needs at least one replica");
  DFC_REQUIRE(service_table.size() >= config.batcher.max_batch_size,
              "service table must cover batch sizes up to max_batch_size");
  for (std::size_t n = 0; n < config.batcher.max_batch_size; ++n) {
    DFC_REQUIRE(service_table[n] > 0, "service table entry for batch size " +
                                          std::to_string(n + 1) + " is unmeasured");
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    DFC_REQUIRE(requests[i].id == i, "request ids must equal their index");
    DFC_REQUIRE(i == 0 || requests[i - 1].arrival_cycle <= requests[i].arrival_cycle,
                "requests must be sorted by arrival cycle");
  }

  const DynamicBatcher batcher(config.batcher);
  RequestQueue queue(config.queue_capacity);
  std::vector<std::uint64_t> busy_until(config.replicas, 0);

  // Optional metrics hookup: every figure below is derived from the simulated
  // timeline (no wall clock), so the registry contents are deterministic.
  dfc::Counter* batches_metric = nullptr;
  dfc::Counter* completed_metric = nullptr;
  dfc::Counter* replica_busy_metric = nullptr;
  dfc::Histogram* batch_size_metric = nullptr;
  dfc::Histogram* latency_metric = nullptr;
  if (config.metrics != nullptr) {
    queue.attach_metrics(*config.metrics);
    batches_metric = &config.metrics->counter("serve_batches_total", "Batches dispatched");
    completed_metric =
        &config.metrics->counter("serve_requests_completed_total", "Requests completed");
    replica_busy_metric = &config.metrics->counter(
        "serve_replica_busy_cycles_total", "Cycles replicas spent executing batches");
    batch_size_metric = &config.metrics->histogram(
        "serve_batch_size", "Dispatched batch sizes",
        dfc::linear_buckets(1.0, 1.0, config.batcher.max_batch_size));
    latency_metric = &config.metrics->histogram(
        "serve_latency_cycles", "Request latency (arrival to completion) in fabric cycles",
        dfc::exponential_buckets(256.0, 2.0, 16));
  }

  // Periodic CSV snapshots of the registry, stamped with the fabric cycle.
  std::unique_ptr<CsvWriter> snapshot_csv;
  std::uint64_t next_snapshot = 0;
  if (config.metrics != nullptr && config.metrics_snapshot_cycles > 0) {
    std::vector<std::string> columns{"cycle"};
    for (const auto& [name, value] : config.metrics->snapshot()) columns.push_back(name);
    snapshot_csv = std::make_unique<CsvWriter>(columns);
    next_snapshot = requests.front().arrival_cycle;
  }
  auto take_snapshots_up_to = [&](std::uint64_t cycle) {
    if (snapshot_csv == nullptr) return;
    while (next_snapshot <= cycle) {
      std::vector<std::string> cells;
      cells.push_back(std::to_string(next_snapshot));
      for (const auto& [name, value] : config.metrics->snapshot()) {
        std::ostringstream os;
        os << value;
        cells.push_back(os.str());
      }
      snapshot_csv->row(cells);
      next_snapshot += config.metrics_snapshot_cycles;
    }
  };

  ServeReport report;
  report.outcomes.resize(requests.size());
  for (const Request& r : requests) {
    report.outcomes[r.id].id = r.id;
    report.outcomes[r.id].arrival_cycle = r.arrival_cycle;
  }

  std::size_t next_arrival = 0;
  std::uint64_t now = requests.front().arrival_cycle;
  std::size_t max_depth = 0;
  double depth_cycle_area = 0.0;

  auto lowest_free_replica = [&]() -> std::size_t {
    for (std::size_t r = 0; r < busy_until.size(); ++r) {
      if (busy_until[r] <= now) return r;
    }
    return busy_until.size();  // none free
  };

  auto dispatch_ready_batches = [&] {
    while (true) {
      const auto oldest = queue.oldest_arrival_cycle();
      if (!oldest) return;
      const std::size_t replica = lowest_free_replica();
      if (replica == busy_until.size()) return;
      if (!batcher.should_close(queue.size(), *oldest, now)) return;

      BatchRecord rec;
      rec.id = report.batch_records.size();
      rec.replica = replica;
      rec.dispatch_cycle = now;
      const std::size_t k = batcher.take_count(queue.size());
      rec.completion_cycle = now + service_table[k - 1];
      rec.request_ids.reserve(k);
      for (std::size_t j = 0; j < k; ++j) {
        const Request r = *queue.try_pop();
        rec.request_ids.push_back(r.id);
        RequestOutcome& o = report.outcomes[r.id];
        o.dispatch_cycle = now;
        o.completion_cycle = rec.completion_cycle;
        o.batch_id = rec.id;
        o.replica = replica;
      }
      busy_until[replica] = rec.completion_cycle;
      if (config.metrics != nullptr) {
        batches_metric->inc();
        completed_metric->inc(k);
        replica_busy_metric->inc(rec.service_cycles());
        batch_size_metric->observe(static_cast<double>(k));
        for (const std::uint64_t id : rec.request_ids) {
          latency_metric->observe(
              static_cast<double>(report.outcomes[id].latency_cycles()));
        }
      }
      report.batch_records.push_back(std::move(rec));
    }
  };

  auto any_replica_busy = [&] {
    return std::any_of(busy_until.begin(), busy_until.end(),
                       [&](std::uint64_t b) { return b > now; });
  };

  while (next_arrival < requests.size() || !queue.empty() || any_replica_busy()) {
    // Next event: an arrival, a replica completion, or — when a replica is
    // already free and the queue is merely waiting to fill — the batcher's
    // timeout deadline.
    std::uint64_t t = kNever;
    if (next_arrival < requests.size()) {
      t = std::min(t, requests[next_arrival].arrival_cycle);
    }
    for (const std::uint64_t b : busy_until) {
      if (b > now) t = std::min(t, b);
    }
    if (const auto oldest = queue.oldest_arrival_cycle();
        oldest && lowest_free_replica() < busy_until.size()) {
      t = std::min(t, batcher.close_deadline(*oldest));
    }
    DFC_CHECK(t != kNever && t >= now, "serve event loop lost its next event");

    // Snapshot points strictly before t see the state after all events <= t-1.
    if (t > 0) take_snapshots_up_to(t - 1);

    depth_cycle_area += static_cast<double>(queue.size()) * static_cast<double>(t - now);
    now = t;

    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_cycle == now) {
      const Request& r = requests[next_arrival];
      if (queue.try_push(r) == Admission::kShed) report.outcomes[r.id].shed = true;
      ++next_arrival;
      max_depth = std::max(max_depth, queue.size());
    }
    dispatch_ready_batches();
  }

  take_snapshots_up_to(now);
  if (snapshot_csv != nullptr) report.metrics_csv = snapshot_csv->str();

  report.stats = summarize(requests, report.outcomes, report.batch_records, max_depth,
                           depth_cycle_area);
  DFC_CHECK(report.stats.shed_requests == queue.shed_count(),
            "outcome shed flags disagree with the queue's shed counter");
  return report;
}

InferenceServer::InferenceServer(const dfc::core::NetworkSpec& spec, const ServeConfig& config)
    : config_(config), pool_(spec, config.replicas, config.build) {}

ServeReport InferenceServer::run(const Load& load) {
  if (config_.metrics != nullptr) {
    config_.metrics->gauge("serve_replicas", "Replica accelerators behind the endpoint")
        .set(static_cast<double>(pool_.size()));
  }
  if (pool_.warmed_batch_limit() < config_.batcher.max_batch_size) {
    pool_.warm(config_.batcher.max_batch_size, config_.threads);
  }
  std::vector<std::uint64_t> table;
  table.reserve(config_.batcher.max_batch_size);
  for (std::size_t n = 1; n <= config_.batcher.max_batch_size; ++n) {
    table.push_back(pool_.service_cycles(n));
  }

  ServeReport report = plan_serving(load.requests, config_, table);
  report.stats.name = pool_.spec().name;

  if (config_.compute_outputs) {
    std::vector<std::size_t> request_image_index(load.requests.size());
    for (const Request& r : load.requests) request_image_index[r.id] = r.image_index;
    pool_.execute(report.batch_records, load.images, request_image_index, report.outcomes,
                  config_.threads);
  }
  return report;
}

}  // namespace dfc::serve
