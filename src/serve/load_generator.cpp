#include "serve/load_generator.hpp"

#include <cmath>
#include <numbers>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/harness.hpp"

namespace dfc::serve {

namespace {

/// Inverse-CDF exponential draw with the given mean; 1 - u keeps the log
/// argument in (0, 1] so the result is finite.
double exp_draw(Rng& rng, double mean) { return -std::log(1.0 - rng.next_double()) * mean; }

/// Arrival clocks for the two-state on/off process. The gap to the next
/// arrival is exponential in ON-time; whenever a gap crosses the end of the
/// current ON window the remainder carries over past the OFF dwell into the
/// next ON window (the standard Markov-modulated construction). Dwell
/// lengths are drawn lazily as windows are entered, so the rng consumption
/// order is fixed and the stream is reproducible.
class BurstClock {
 public:
  BurstClock(Rng& rng, double on_rate_cycles, double on_mean, double off_mean)
      : rng_(rng), on_gap_mean_(on_rate_cycles), on_mean_(on_mean), off_mean_(off_mean) {
    on_end_ = exp_draw(rng_, on_mean_);
  }

  double next_arrival() {
    double gap = exp_draw(rng_, on_gap_mean_);
    while (clock_ + gap >= on_end_) {
      gap -= on_end_ - clock_;
      clock_ = on_end_ + exp_draw(rng_, off_mean_);  // skip the OFF dwell
      on_end_ = clock_ + exp_draw(rng_, on_mean_);
    }
    clock_ += gap;
    return clock_;
  }

 private:
  Rng& rng_;
  double on_gap_mean_;  ///< mean inter-arrival gap while ON, in cycles
  double on_mean_;
  double off_mean_;
  double clock_ = 0.0;   ///< current position (always inside an ON window)
  double on_end_ = 0.0;  ///< end of the current ON window
};

}  // namespace

const char* arrival_process_name(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kUniform: return "uniform";
    case ArrivalProcess::kDiurnal: return "diurnal";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kTrace: return "trace";
  }
  return "?";
}

Load generate_load(const dfc::core::NetworkSpec& spec, const LoadSpec& load) {
  const bool trace_mode = load.arrivals == ArrivalProcess::kTrace;
  DFC_REQUIRE(trace_mode || load.rate_images_per_second > 0.0, "load rate must be positive");
  DFC_REQUIRE(trace_mode || load.request_count > 0, "load needs at least one request");
  DFC_REQUIRE(load.distinct_images > 0, "load needs at least one distinct image");
  if (load.arrivals == ArrivalProcess::kDiurnal) {
    DFC_REQUIRE(load.diurnal_amplitude >= 0.0 && load.diurnal_amplitude < 1.0,
                "diurnal amplitude must be in [0, 1)");
    DFC_REQUIRE(load.diurnal_period_cycles > 0, "diurnal period must be positive");
  }
  if (load.arrivals == ArrivalProcess::kBursty) {
    DFC_REQUIRE(load.burst_on_mean_cycles > 0 && load.burst_off_mean_cycles > 0,
                "burst dwell means must be positive");
  }
  if (trace_mode) {
    DFC_REQUIRE(!load.trace_arrival_cycles.empty(), "trace replay needs at least one arrival");
    for (std::size_t i = 1; i < load.trace_arrival_cycles.size(); ++i) {
      DFC_REQUIRE(load.trace_arrival_cycles[i - 1] <= load.trace_arrival_cycles[i],
                  "trace arrival cycles must be sorted non-decreasing");
    }
  }

  Rng rng(load.seed);
  Load out;
  out.images.reserve(load.distinct_images);
  for (std::size_t i = 0; i < load.distinct_images; ++i) {
    Tensor t(spec.input_shape);
    for (float& v : t.flat()) v = rng.uniform(-1.0f, 1.0f);
    out.images.push_back(std::move(t));
  }

  const std::size_t count =
      trace_mode ? load.trace_arrival_cycles.size() : load.request_count;
  const double mean_gap_cycles =
      trace_mode ? 0.0 : dfc::core::kClockHz / load.rate_images_per_second;
  // Thinning needs candidates at the envelope (peak) rate; acceptance brings
  // the local rate down to rate(t).
  const double peak_gap_cycles = mean_gap_cycles / (1.0 + load.diurnal_amplitude);
  // Constructed only for bursty loads: the BurstClock draws its first ON
  // dwell up front, and consuming that draw for other shapes would shift
  // their rng streams (Poisson/uniform loads must stay byte-identical to
  // the pre-shapes generator).
  std::optional<BurstClock> burst;
  if (load.arrivals == ArrivalProcess::kBursty) {
    const double duty =
        static_cast<double>(load.burst_on_mean_cycles) /
        static_cast<double>(load.burst_on_mean_cycles + load.burst_off_mean_cycles);
    burst.emplace(rng, mean_gap_cycles * duty,
                  static_cast<double>(load.burst_on_mean_cycles),
                  static_cast<double>(load.burst_off_mean_cycles));
  }

  double clock = 0.0;  // accumulate in double so rounding does not drift
  out.requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0 || load.arrivals == ArrivalProcess::kBursty ||
        load.arrivals == ArrivalProcess::kTrace) {
      switch (load.arrivals) {
        case ArrivalProcess::kPoisson:
          clock += exp_draw(rng, mean_gap_cycles);
          break;
        case ArrivalProcess::kUniform:
          clock += mean_gap_cycles;
          break;
        case ArrivalProcess::kDiurnal: {
          // Lewis-Shedler thinning: candidate gaps at the peak rate, each
          // accepted with probability rate(t)/peak — an exact sampler for
          // the sinusoid-modulated process.
          for (;;) {
            clock += exp_draw(rng, peak_gap_cycles);
            const double phase = 2.0 * std::numbers::pi * clock /
                                 static_cast<double>(load.diurnal_period_cycles);
            const double accept =
                (1.0 + load.diurnal_amplitude * std::sin(phase)) /
                (1.0 + load.diurnal_amplitude);
            if (rng.next_double() < accept) break;
          }
          break;
        }
        case ArrivalProcess::kBursty:
          clock = burst->next_arrival();
          break;
        case ArrivalProcess::kTrace:
          clock = static_cast<double>(load.trace_arrival_cycles[i]);
          break;
      }
    }
    Request r;
    r.id = i;
    r.arrival_cycle = trace_mode ? load.trace_arrival_cycles[i]
                                 : static_cast<std::uint64_t>(clock);
    r.image_index = static_cast<std::size_t>(rng.next_below(load.distinct_images));
    out.requests.push_back(r);
  }
  return out;
}

}  // namespace dfc::serve
