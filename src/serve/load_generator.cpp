#include "serve/load_generator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/harness.hpp"

namespace dfc::serve {

Load generate_load(const dfc::core::NetworkSpec& spec, const LoadSpec& load) {
  DFC_REQUIRE(load.rate_images_per_second > 0.0, "load rate must be positive");
  DFC_REQUIRE(load.request_count > 0, "load needs at least one request");
  DFC_REQUIRE(load.distinct_images > 0, "load needs at least one distinct image");

  Rng rng(load.seed);
  Load out;
  out.images.reserve(load.distinct_images);
  for (std::size_t i = 0; i < load.distinct_images; ++i) {
    Tensor t(spec.input_shape);
    for (float& v : t.flat()) v = rng.uniform(-1.0f, 1.0f);
    out.images.push_back(std::move(t));
  }

  const double mean_gap_cycles = dfc::core::kClockHz / load.rate_images_per_second;
  double clock = 0.0;  // accumulate in double so rounding does not drift
  out.requests.reserve(load.request_count);
  for (std::size_t i = 0; i < load.request_count; ++i) {
    if (i > 0) {
      switch (load.arrivals) {
        case ArrivalProcess::kPoisson:
          // Inverse-CDF exponential draw; 1 - u keeps the log argument in
          // (0, 1] so the gap is finite.
          clock += -std::log(1.0 - rng.next_double()) * mean_gap_cycles;
          break;
        case ArrivalProcess::kUniform:
          clock += mean_gap_cycles;
          break;
      }
    }
    Request r;
    r.id = i;
    r.arrival_cycle = static_cast<std::uint64_t>(clock);
    r.image_index = static_cast<std::size_t>(rng.next_below(load.distinct_images));
    out.requests.push_back(r);
  }
  return out;
}

}  // namespace dfc::serve
