#include "serve/request_queue.hpp"

#include <string>

#include "common/error.hpp"

namespace dfc::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  DFC_REQUIRE(capacity > 0, "request queue capacity must be positive");
}

Admission RequestQueue::try_push(const Request& r) {
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.size() >= capacity_) {
    ++shed_;
    if (shed_metric_ != nullptr) shed_metric_->inc();
    return Admission::kShed;
  }
  q_.push_back(r);
  if (admitted_metric_ != nullptr) admitted_metric_->inc();
  if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(q_.size()));
  return Admission::kAccepted;
}

void RequestQueue::push(const Request& r) {
  if (try_push(r) == Admission::kShed) {
    throw OverloadError("request " + std::to_string(r.id) + " shed: queue full (capacity " +
                        std::to_string(capacity_) + ")");
  }
}

std::optional<Request> RequestQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.empty()) return std::nullopt;
  Request r = q_.front();
  q_.pop_front();
  if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(q_.size()));
  return r;
}

std::optional<std::uint64_t> RequestQueue::oldest_arrival_cycle() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.empty()) return std::nullopt;
  return q_.front().arrival_cycle;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

std::uint64_t RequestQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

void RequestQueue::attach_metrics(dfc::MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  admitted_metric_ = &registry.counter("serve_requests_admitted_total",
                                       "Requests accepted into the admission queue");
  shed_metric_ =
      &registry.counter("serve_requests_shed_total", "Requests rejected because the queue was full");
  depth_metric_ = &registry.gauge("serve_queue_depth", "Current admission queue depth");
}

}  // namespace dfc::serve
