// Static design verifier: `dfcnn check` without a single simulated cycle.
//
// The paper's pipeline is *statically schedulable* — FIFO depths, Eq. 4
// initiation intervals and Table I resource costs are all knowable before
// simulation — so an undersized FIFO, an illegal partition cut or a
// budget-busting port plan should be a named diagnostic, not a runtime
// kDeadlock or a DFC_CHECK abort deep in the builder. verify_design runs
// five check families (DESIGN.md §13 catalogs every code):
//
//   1. graph structure    — dangling/unbound channels, duplicate names,
//                           unreachable stages (DF001–DF004);
//   2. shape propagation  — tensor shapes, interleave divisibility, weight
//                           table widths (DF101–DF105);
//   3. rate consistency   — per-stage Eq. 4 cycles, FIFOs/links that
//                           statically throttle the design II (DF201–DF203);
//   4. deadlock freedom   — sink word demand vs delivery, feedback cycles
//                           with empty FIFOs; inter-device links are covered
//                           by the credit-conservation argument (DF301–DF302);
//   5. resource budget    — Table I model vs the device, per partition
//                           segment (DF401–DF403).
//
// The verifier never throws on a bad design — it *reports*. It is wired in
// three places: the `dfcnn check` CLI, the opt-in pre-flight of
// AcceleratorHarness / mfpga::build_multi_fpga (BuildOptions::preflight_verify),
// and the DSE candidate filter (DseOptions::verify_candidates).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/interlink.hpp"
#include "core/network_spec.hpp"
#include "hwmodel/cost_model.hpp"
#include "hwmodel/device.hpp"
#include "verify/diagnostics.hpp"
#include "verify/graph.hpp"

namespace dfc::verify {

struct VerifyOptions {
  dfc::hw::Device device = dfc::hw::virtex7_485t();
  dfc::hw::CostModel cost_model{};
  /// Utilization fraction above which DF402 warns (errors start at 1.0).
  double headroom_warn_fraction = 0.90;
  /// Table I budget checks can be disabled for pure-structure verification
  /// (e.g. DSE candidates are budget-checked by the explorer itself).
  bool check_resources = true;
};

/// The machine-readable verdict: every diagnostic plus the design facts the
/// checks derived on the way (deterministic; byte-identical JSON across runs
/// and thread counts).
struct VerifyReport {
  std::string design;
  std::size_t devices = 1;
  std::int64_t predicted_interval_cycles = 0;  ///< Eq. 4 design II (0 if shapes broken)
  std::size_t channels_checked = 0;
  std::size_t stages_checked = 0;
  std::vector<Diagnostic> diagnostics;

  std::size_t errors() const;
  std::size_t warnings() const;
  /// No error-severity diagnostics (warnings/infos allowed).
  bool clean() const { return errors() == 0; }
  bool has(Code code) const;

  /// Human-readable rendering: one line per diagnostic plus a summary.
  std::string render() const;
  /// Deterministic JSON for tooling and CI gates.
  std::string to_json() const;
  /// Throws VerifyError carrying the error-severity diagnostics; no-op when
  /// clean. The fail-fast half of the pre-flight.
  void throw_if_errors() const;
};

/// Verifies a single-context design (build_accelerator topology, including
/// LinkChannel crossings when options.layer_device is set).
VerifyReport verify_design(const dfc::core::NetworkSpec& spec,
                           const dfc::core::BuildOptions& options = {},
                           const VerifyOptions& vopts = {});

/// Verifies a partitioned multi-FPGA design (build_multi_fpga topology):
/// partition legality, per-device Table I budgets, link rate and credit
/// windows, plus every single-design check.
VerifyReport verify_design_multi(const dfc::core::NetworkSpec& spec,
                                 const std::vector<std::size_t>& layer_device,
                                 const dfc::core::BuildOptions& options = {},
                                 int link_credits = 0, const VerifyOptions& vopts = {});

/// Structural checks only (DF001–DF004, DF301–DF302) over an arbitrary
/// graph — the entry point for hand-built topologies in tests and for
/// pre-flighting hand-assembled accelerators.
VerifyReport verify_graph(const DesignGraph& graph);

/// Spec-level checks only (DF101–DF105 + DF403 when layer_device is set):
/// the cheap subset the DSE rejection filter runs per candidate.
std::vector<Diagnostic> check_spec(const dfc::core::NetworkSpec& spec);

/// Registers the verifier as core's build-time pre-flight hook, honoured by
/// AcceleratorHarness when BuildOptions::preflight_verify is set. Linking
/// this library installs it automatically (static registrar); calling it
/// again is a cheap no-op.
void install_preflight();

}  // namespace dfc::verify
