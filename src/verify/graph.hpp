// Abstract channel/process graph of a built design, for static analysis.
//
// The verifier's structural checks (dangling channels, duplicate names,
// unreachable stages, feedback cycles, sink demand) operate on this graph,
// not on a live SimContext: a DesignGraph can be elaborated from a
// NetworkSpec + BuildOptions *without* instantiating any process or weight
// table, and it can be hand-assembled by tests to express broken topologies
// the builder itself would refuse to construct.
//
// build_design_graph mirrors core::build_accelerator's elaboration —
// including every FIFO and process *name* it would create — so diagnostics
// point at the same entities a fifo_report, trace or fault plan would use.
// build_design_graph_multi mirrors mfpga::build_multi_fpga, with inter-device
// wires modeled as forward channels whose capacity is the credit window (the
// reverse credit lane is deliberately not an edge: credits are conserved,
// so it cannot introduce a deadlock cycle of its own — see DESIGN.md §13).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/interlink.hpp"
#include "core/network_spec.hpp"

namespace dfc::verify {

/// One FIFO (or inter-device wire) as the analyzer sees it.
struct GraphChannel {
  std::string name;
  std::size_t capacity = 0;
  int producer = -1;  ///< node index; -1 = unbound (dangling input)
  int consumer = -1;  ///< node index; -1 = unbound (dangling output)
};

/// One process as the analyzer sees it.
struct GraphNode {
  std::string name;
  std::string kind;  ///< "dma-source"|"dma-sink"|"conv"|"pool"|"fcn"|"mem"|
                     ///< "demux"|"merge"|"link"|"link-tx"|"link-rx"
  std::size_t device = 0;
  std::vector<int> inputs;   ///< channel indices this node consumes
  std::vector<int> outputs;  ///< channel indices this node produces
  /// For sinks: words the node insists on receiving per image (0 = n/a).
  std::int64_t demand_per_image = 0;
};

struct DesignGraph {
  std::vector<GraphNode> nodes;
  std::vector<GraphChannel> channels;
  /// Words per image the pipeline delivers to the sink, from static shape
  /// propagation (0 = unknown; hand-built graphs may leave it unset to skip
  /// the DF301 demand check).
  std::int64_t delivered_per_image = 0;

  int add_node(std::string name, std::string kind, std::size_t device = 0);
  int add_channel(std::string name, std::size_t capacity);

  /// Marks `node` as the producer/consumer of `channel` and records the
  /// channel on the node's port lists.
  void bind_producer(int channel, int node);
  void bind_consumer(int channel, int node);
};

/// Elaborates the single-context design build_accelerator would create
/// (including LinkChannel crossings when options.layer_device is set).
DesignGraph build_design_graph(const dfc::core::NetworkSpec& spec,
                               const dfc::core::BuildOptions& options = {});

/// Elaborates the multi-context design build_multi_fpga would create:
/// per-device name prefixes ("fpga<d>."), Tx/wire/Rx triples per boundary
/// stream port, wire capacity = the link's effective credit window.
DesignGraph build_design_graph_multi(const dfc::core::NetworkSpec& spec,
                                     const std::vector<std::size_t>& layer_device,
                                     const dfc::core::BuildOptions& options = {},
                                     int link_credits = 0);

}  // namespace dfc::verify
