// Stable diagnostic vocabulary of the static design verifier (DESIGN.md §13).
//
// Every problem the verifier can name has a stable code (DF001…), a default
// severity and a *named location* — the FIFO, process, layer or device the
// problem lives at — so tooling (CI gates, the DSE rejection filter, editor
// integrations) can key on codes instead of parsing prose. Codes are grouped
// by family and are never renumbered:
//
//   DF0xx  graph structure   (dangling channels, duplicate names, dead stages)
//   DF1xx  shape & ports     (tensor propagation, interleave divisibility)
//   DF2xx  rate consistency  (Eq. 4 II propagation, throttling FIFOs/links)
//   DF3xx  deadlock freedom  (feedback cycles, starved joins, sink demand)
//   DF4xx  resources         (Table I budget, partition legality)
//
// Header-only on purpose: construction paths in core/builder and
// multifpga/exec throw structured diagnostics (VerifyError) without linking
// the verifier library, keeping the dependency graph acyclic
// (verify -> core, never core -> verify).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace dfc::verify {

enum class Severity { kError, kWarning, kInfo };

inline const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "?";
}

/// Stable diagnostic codes. The enumerator name is the code; never renumber.
enum class Code {
  // --- graph structure -------------------------------------------------------
  DF001,  ///< channel has no producer (a consumer would starve forever)
  DF002,  ///< channel has no consumer (fills up and wedges its producer)
  DF003,  ///< duplicate channel or process name
  DF004,  ///< stage unreachable from any source
  // --- shape & ports ---------------------------------------------------------
  DF101,  ///< tensor shape mismatch between consecutive layers
  DF102,  ///< port-count / interleave divisibility violation
  DF103,  ///< weight or bias table size mismatch
  DF104,  ///< element-level filter chain combined with zero-padding
  DF105,  ///< classifier input count does not match upstream volume
  // --- rate consistency ------------------------------------------------------
  DF201,  ///< FIFO too shallow to sustain one transfer per cycle
  DF202,  ///< inter-device link statically throttles the design interval
  DF203,  ///< link credit window below the credit round trip
  // --- deadlock freedom ------------------------------------------------------
  DF301,  ///< sink demands more words per image than the design delivers
  DF302,  ///< channel cycle (feedback loop) with no initial tokens
  // --- resources & partition -------------------------------------------------
  DF401,  ///< device resource budget exceeded
  DF402,  ///< utilization above the headroom threshold
  DF403,  ///< illegal partition cut (coverage / monotonicity / device count)
};

inline const char* code_name(Code c) {
  switch (c) {
    case Code::DF001: return "DF001";
    case Code::DF002: return "DF002";
    case Code::DF003: return "DF003";
    case Code::DF004: return "DF004";
    case Code::DF101: return "DF101";
    case Code::DF102: return "DF102";
    case Code::DF103: return "DF103";
    case Code::DF104: return "DF104";
    case Code::DF105: return "DF105";
    case Code::DF201: return "DF201";
    case Code::DF202: return "DF202";
    case Code::DF203: return "DF203";
    case Code::DF301: return "DF301";
    case Code::DF302: return "DF302";
    case Code::DF401: return "DF401";
    case Code::DF402: return "DF402";
    case Code::DF403: return "DF403";
  }
  return "DF???";
}

inline Severity default_severity(Code c) {
  switch (c) {
    case Code::DF004:
    case Code::DF201:
    case Code::DF202:
    case Code::DF203:
    case Code::DF402:
      return Severity::kWarning;
    default:
      return Severity::kError;
  }
}

/// One verifier finding: what (code), how bad (severity), where (entity —
/// the stable FIFO/process/layer/device name) and why (message).
struct Diagnostic {
  Code code = Code::DF001;
  Severity severity = Severity::kError;
  std::string entity;
  std::string message;

  Diagnostic() = default;
  Diagnostic(Code c, std::string where, std::string what)
      : code(c), severity(default_severity(c)), entity(std::move(where)),
        message(std::move(what)) {}

  /// "error DF102 at L2: IN_FM not divisible by IN_PORTS"
  std::string str() const {
    std::string s = severity_name(severity);
    s += " ";
    s += code_name(code);
    s += " at ";
    s += entity.empty() ? "<design>" : entity;
    s += ": ";
    s += message;
    return s;
  }
};

/// Thrown by construction paths and the pre-flight when a design carries
/// error-severity diagnostics. A ConfigError subclass, so every existing
/// catch site keeps working — but callers that know about the verifier can
/// recover the structured findings instead of parsing what().
class VerifyError : public ConfigError {
 public:
  explicit VerifyError(std::vector<Diagnostic> diagnostics)
      : ConfigError(join(diagnostics)), diagnostics_(std::move(diagnostics)) {}
  explicit VerifyError(Diagnostic d) : VerifyError(std::vector<Diagnostic>{std::move(d)}) {}

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  static std::string join(const std::vector<Diagnostic>& ds) {
    std::string s = "design verification failed";
    for (const Diagnostic& d : ds) {
      s += "\n  ";
      s += d.str();
    }
    return s;
  }
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace dfc::verify
