#include "verify/graph.hpp"

#include <utility>
#include <variant>

namespace dfc::verify {

using dfc::core::BuildOptions;
using dfc::core::ConvLayerSpec;
using dfc::core::FcnLayerSpec;
using dfc::core::NetworkSpec;
using dfc::core::PoolLayerSpec;

int DesignGraph::add_node(std::string name, std::string kind, std::size_t device) {
  GraphNode n;
  n.name = std::move(name);
  n.kind = std::move(kind);
  n.device = device;
  nodes.push_back(std::move(n));
  return static_cast<int>(nodes.size()) - 1;
}

int DesignGraph::add_channel(std::string name, std::size_t capacity) {
  GraphChannel c;
  c.name = std::move(name);
  c.capacity = capacity;
  channels.push_back(std::move(c));
  return static_cast<int>(channels.size()) - 1;
}

void DesignGraph::bind_producer(int channel, int node) {
  channels.at(static_cast<std::size_t>(channel)).producer = node;
  nodes.at(static_cast<std::size_t>(node)).outputs.push_back(channel);
}

void DesignGraph::bind_consumer(int channel, int node) {
  channels.at(static_cast<std::size_t>(channel)).consumer = node;
  nodes.at(static_cast<std::size_t>(node)).inputs.push_back(channel);
}

namespace {

/// Mirrors core::adapt_stream_ports: returns the channel indices of the
/// `target`-port bundle, inserting demux/merge nodes as the builder would.
/// Returns an empty vector when the adaptation is illegal (the divisibility
/// diagnostics are the verifier's job; the graph just stops growing here).
std::vector<int> adapt_ports(DesignGraph& g, const std::string& name, std::vector<int> streams,
                             std::int64_t channels, int target, std::size_t fifo_capacity,
                             std::size_t device) {
  const int up = static_cast<int>(streams.size());
  if (up == target) return streams;

  std::vector<int> out(static_cast<std::size_t>(target), -1);
  if (up < target) {
    if (target % up != 0 || channels % target != 0) return {};
    const int fan = target / up;
    for (int p = 0; p < up; ++p) {
      const int demux = g.add_node(name + ".demux" + std::to_string(p), "demux", device);
      g.bind_consumer(streams[static_cast<std::size_t>(p)], demux);
      for (int i = 0; i < fan; ++i) {
        const int q = p + i * up;
        const int ch = g.add_channel(
            name + ".demux" + std::to_string(p) + "_" + std::to_string(q), fifo_capacity);
        g.bind_producer(ch, demux);
        out[static_cast<std::size_t>(q)] = ch;
      }
    }
    return out;
  }

  if (up % target != 0) return {};
  const int fan = up / target;
  for (int q = 0; q < target; ++q) {
    const int merge = g.add_node(name + ".merge" + std::to_string(q), "merge", device);
    for (int i = 0; i < fan; ++i) {
      g.bind_consumer(streams[static_cast<std::size_t>(q + i * target)], merge);
    }
    const int ch = g.add_channel(name + ".merged" + std::to_string(q), fifo_capacity);
    g.bind_producer(ch, merge);
    out[static_cast<std::size_t>(q)] = ch;
  }
  return out;
}

/// Mirrors core::append_layer_segment for layers [first, last): grows the
/// graph and returns the outgoing stream-channel bundle (empty on an
/// illegal adaptation).
struct SegmentState {
  std::vector<int> streams;
  Shape3 shape{};
};

SegmentState append_segment(DesignGraph& g, const NetworkSpec& spec, std::size_t first,
                            std::size_t last, SegmentState in, const BuildOptions& options,
                            const std::string& prefix, std::size_t device) {
  std::vector<int> streams = std::move(in.streams);
  Shape3 shape = in.shape;

  for (std::size_t li = first; li < last && !streams.empty(); ++li) {
    const auto& layer = spec.layers[li];
    const std::string lname = prefix + "L" + std::to_string(li);

    if (const auto* conv = std::get_if<ConvLayerSpec>(&layer)) {
      streams = adapt_ports(g, lname, std::move(streams), shape.c, conv->in_ports,
                            options.stream_fifo_capacity, device);
      if (streams.empty()) break;

      const int core = g.add_node(lname + ".conv", "conv", device);
      for (int p = 0; p < conv->in_ports; ++p) {
        const int mem = g.add_node(lname + ".mem" + std::to_string(p), "mem", device);
        g.bind_consumer(streams[static_cast<std::size_t>(p)], mem);
        const int win = g.add_channel(lname + ".win" + std::to_string(p),
                                      options.window_fifo_capacity);
        g.bind_producer(win, mem);
        g.bind_consumer(win, core);
      }
      std::vector<int> outs;
      for (int p = 0; p < conv->out_ports; ++p) {
        const int ch = g.add_channel(lname + ".out" + std::to_string(p),
                                     options.stream_fifo_capacity);
        g.bind_producer(ch, core);
        outs.push_back(ch);
      }
      streams = std::move(outs);
      shape = conv->out_shape();
    } else if (const auto* pool = std::get_if<PoolLayerSpec>(&layer)) {
      streams = adapt_ports(g, lname, std::move(streams), shape.c, pool->ports,
                            options.stream_fifo_capacity, device);
      if (streams.empty()) break;

      std::vector<int> outs;
      for (int p = 0; p < pool->ports; ++p) {
        const int mem = g.add_node(lname + ".mem" + std::to_string(p), "mem", device);
        g.bind_consumer(streams[static_cast<std::size_t>(p)], mem);
        const int win = g.add_channel(lname + ".win" + std::to_string(p),
                                      options.window_fifo_capacity);
        g.bind_producer(win, mem);
        const int core = g.add_node(lname + ".pool" + std::to_string(p), "pool", device);
        g.bind_consumer(win, core);
        const int ch = g.add_channel(lname + ".out" + std::to_string(p),
                                     options.stream_fifo_capacity);
        g.bind_producer(ch, core);
        outs.push_back(ch);
      }
      streams = std::move(outs);
      shape = pool->out_shape();
    } else {
      const auto& fcn = std::get<FcnLayerSpec>(layer);
      streams = adapt_ports(g, lname, std::move(streams), shape.c, 1,
                            options.stream_fifo_capacity, device);
      if (streams.empty()) break;

      const int core = g.add_node(lname + ".fcn", "fcn", device);
      g.bind_consumer(streams[0], core);
      const int ch = g.add_channel(lname + ".out", options.stream_fifo_capacity);
      g.bind_producer(ch, core);
      streams = {ch};
      shape = Shape3{fcn.out_count, 1, 1};
    }
  }

  return SegmentState{std::move(streams), shape};
}

void finish_sink(DesignGraph& g, SegmentState cur, const BuildOptions& options,
                 const std::string& prefix, std::size_t device) {
  if (cur.streams.empty()) return;
  cur.streams = adapt_ports(g, prefix + "dma", std::move(cur.streams), cur.shape.c, 1,
                            options.stream_fifo_capacity, device);
  if (cur.streams.empty()) return;
  const int sink = g.add_node(prefix + "dma.sink", "dma-sink", device);
  g.bind_consumer(cur.streams[0], sink);
  g.nodes[static_cast<std::size_t>(sink)].demand_per_image = cur.shape.volume();
  g.delivered_per_image = cur.shape.volume();
}

}  // namespace

DesignGraph build_design_graph(const NetworkSpec& spec, const BuildOptions& options) {
  DesignGraph g;
  if (spec.layers.empty()) return g;

  const int source = g.add_node("dma.source", "dma-source", 0);
  const int dma_in = g.add_channel("dma.in", options.stream_fifo_capacity);
  g.bind_producer(dma_in, source);

  SegmentState cur{{dma_in}, spec.input_shape};

  std::size_t li = 0;
  while (li < spec.layers.size() && !cur.streams.empty()) {
    std::size_t seg_end = spec.layers.size();
    if (!options.layer_device.empty() && options.layer_device.size() == spec.layers.size()) {
      seg_end = li + 1;
      while (seg_end < spec.layers.size() &&
             options.layer_device[seg_end] == options.layer_device[li]) {
        ++seg_end;
      }
    }
    if (li > 0) {
      const std::string lname = "L" + std::to_string(li);
      std::vector<int> linked;
      linked.reserve(cur.streams.size());
      for (std::size_t p = 0; p < cur.streams.size(); ++p) {
        const int link = g.add_node(lname + ".link" + std::to_string(p), "link", 0);
        g.bind_consumer(cur.streams[p], link);
        const int ch = g.add_channel(lname + ".xfpga" + std::to_string(p),
                                     options.stream_fifo_capacity);
        g.bind_producer(ch, link);
        linked.push_back(ch);
      }
      cur.streams = std::move(linked);
    }
    cur = append_segment(g, spec, li, seg_end, std::move(cur), options, "", 0);
    li = seg_end;
  }

  finish_sink(g, std::move(cur), options, "", 0);
  return g;
}

DesignGraph build_design_graph_multi(const NetworkSpec& spec,
                                     const std::vector<std::size_t>& layer_device,
                                     const BuildOptions& options, int link_credits) {
  DesignGraph g;
  if (spec.layers.empty() || layer_device.size() != spec.layers.size()) return g;

  const dfc::core::InterLinkModel link{options.link, link_credits};
  const std::size_t credit_window = static_cast<std::size_t>(
      std::max(1, link.credits > 0 ? link.credits : link.effective_credits()));

  auto prefix = [](std::size_t d) { return "fpga" + std::to_string(d) + "."; };

  const int source = g.add_node(prefix(0) + "dma.source", "dma-source", 0);
  const int dma_in = g.add_channel(prefix(0) + "dma.in", options.stream_fifo_capacity);
  g.bind_producer(dma_in, source);

  SegmentState cur{{dma_in}, spec.input_shape};

  std::size_t li = 0;
  std::size_t device = 0;
  while (li < spec.layers.size() && !cur.streams.empty()) {
    std::size_t seg_end = li + 1;
    while (seg_end < spec.layers.size() && layer_device[seg_end] == layer_device[li]) {
      ++seg_end;
    }
    if (li > 0) {
      // One Tx/wire/Rx triple per stream port crossing the boundary. The
      // wire is the forward data lane only; the credit-return lane cannot
      // deadlock by the conservation argument (DESIGN.md §13), so it is not
      // an edge of the analysis graph.
      const std::string lname = "L" + std::to_string(li);
      std::vector<int> linked;
      linked.reserve(cur.streams.size());
      for (std::size_t p = 0; p < cur.streams.size(); ++p) {
        const int tx =
            g.add_node(prefix(device) + lname + ".tx" + std::to_string(p), "link-tx", device);
        g.bind_consumer(cur.streams[p], tx);
        const int wire = g.add_channel(lname + ".wire" + std::to_string(p), credit_window);
        g.bind_producer(wire, tx);
        const int rx = g.add_node(prefix(device + 1) + lname + ".rx" + std::to_string(p),
                                  "link-rx", device + 1);
        g.bind_consumer(wire, rx);
        const int ingress = g.add_channel(
            prefix(device + 1) + lname + ".xfpga" + std::to_string(p),
            options.stream_fifo_capacity);
        g.bind_producer(ingress, rx);
        linked.push_back(ingress);
      }
      cur.streams = std::move(linked);
      ++device;
    }
    cur = append_segment(g, spec, li, seg_end, std::move(cur), options, prefix(device), device);
    li = seg_end;
  }

  finish_sink(g, std::move(cur), options, prefix(device), device);
  return g;
}

}  // namespace dfc::verify
