#include "verify/verifier.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <variant>

#include "common/math_util.hpp"
#include "core/preflight.hpp"

namespace dfc::verify {

using dfc::core::BuildOptions;
using dfc::core::ConvLayerSpec;
using dfc::core::FcnLayerSpec;
using dfc::core::NetworkSpec;
using dfc::core::PoolLayerSpec;

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_units(double v) {
  std::ostringstream os;
  os << static_cast<std::int64_t>(v + 0.5);
  return os.str();
}

bool has_errors(const std::vector<Diagnostic>& ds) {
  return std::any_of(ds.begin(), ds.end(),
                     [](const Diagnostic& d) { return d.severity == Severity::kError; });
}

// --- rate consistency (Eq. 4 mirror) -----------------------------------------
//
// Reimplements dse::estimate_timing's per-stage cycles so dfcnn_verify stays
// below dse in the dependency graph (dse's rejection filter links verify).
// test_verify cross-validates both against each other for every preset.

std::int64_t layer_cycles_per_image(const dfc::core::LayerSpec& layer) {
  if (const auto* conv = std::get_if<ConvLayerSpec>(&layer)) {
    const std::int64_t ingest = conv->in_shape.plane() * conv->in_shape.c / conv->in_ports;
    const std::int64_t compute = conv->out_shape().plane() * conv->initiation_interval();
    return std::max(ingest, compute);
  }
  if (const auto* pool = std::get_if<PoolLayerSpec>(&layer)) {
    return pool->in_shape.plane() * pool->in_shape.c / pool->ports;
  }
  const auto& fcn = std::get<FcnLayerSpec>(layer);
  return std::max(fcn.in_count, fcn.out_count);
}

/// Sustained link rate under the credit protocol: one word per
/// cycles_per_word, unless a finite window caps it at `credits` words per
/// 2*latency round trip (the same expression as estimate_multi_timing).
std::int64_t effective_cycles_per_word(const dfc::core::LinkModel& link, int credits) {
  std::int64_t cpw = link.cycles_per_word;
  if (credits > 0) {
    cpw = std::max<std::int64_t>(cpw, dfc::ceil_div(2 * link.latency_cycles, credits));
  }
  return cpw;
}

/// Emits DF201/DF202/DF203 and returns the design interval (Eq. 4 max over
/// stages, including link stages at every device boundary). Requires a spec
/// that passed check_spec with no errors.
std::int64_t check_rates(const NetworkSpec& spec, const BuildOptions& options,
                         const std::vector<std::size_t>& layer_device, int credits,
                         std::vector<Diagnostic>& out) {
  std::int64_t interval = spec.input_shape.volume();  // dma-in
  for (const auto& layer : spec.layers) {
    interval = std::max(interval, layer_cycles_per_image(layer));
  }
  interval = std::max(interval, spec.output_shape().volume());  // dma-out

  // FIFO depth sufficiency: under the two-phase update a push lands at the
  // end of the cycle, so a capacity-1 channel cannot hold one word in flight
  // while the producer prepares the next — every transfer alternates with a
  // full-stall cycle, halving the rate Eq. 4 assumes. Capacity 0 can never
  // transfer at all.
  const auto check_capacity = [&](std::size_t cap, const char* which) {
    if (cap == 0) {
      Diagnostic d(Code::DF201, which, "capacity 0 channel can never transfer a word");
      d.severity = Severity::kError;
      out.push_back(std::move(d));
    } else if (cap < 2) {
      out.push_back({Code::DF201, which,
                     "capacity " + std::to_string(cap) +
                         " halves the sustained rate under the two-phase FIFO update; "
                         "use a depth of at least 2"});
    }
  };
  check_capacity(options.stream_fifo_capacity, "stream-fifo");
  check_capacity(options.window_fifo_capacity, "window-fifo");

  if (!layer_device.empty() && layer_device.size() == spec.layers.size()) {
    const std::int64_t cpw = effective_cycles_per_word(options.link, credits);

    // Credit window vs round trip: below ceil(2*latency/cpw)+2 the Tx idles
    // waiting for returns and the serializer cannot sustain its rate (the
    // conservation argument in core/interlink.hpp).
    if (credits > 0) {
      const int needed = dfc::core::InterLinkModel{options.link, 0}.effective_credits();
      if (credits < needed) {
        out.push_back({Code::DF203, "interlink",
                       "credit window " + std::to_string(credits) +
                           " is below the full round trip (" + std::to_string(needed) +
                           " credits); the link throttles to one word per " +
                           std::to_string(cpw) + " cycles"});
      }
    }

    Shape3 shape = spec.input_shape;
    for (std::size_t i = 0; i < spec.layers.size(); ++i) {
      shape = dfc::core::layer_out_shape(spec.layers[i]);
      if (i + 1 < spec.layers.size() && layer_device[i + 1] != layer_device[i]) {
        const int ports = dfc::core::layer_out_ports(spec.layers[i]);
        const std::int64_t link_cycles = dfc::ceil_div(shape.volume(), ports) * cpw;
        const std::string entity = "link" + std::to_string(i) + "->" + std::to_string(i + 1);
        if (link_cycles > interval) {
          out.push_back({Code::DF202, entity,
                         "link sustains " + std::to_string(link_cycles) +
                             " cycles/image, throttling the compute interval of " +
                             std::to_string(interval)});
        }
        interval = std::max(interval, link_cycles);
      }
    }
  }
  return interval;
}

// --- resource budget (Table I mirror) ----------------------------------------

/// Per-device calibrated usage, mirroring mfpga::usage_per_device (which
/// verify cannot link — multifpga links verify). Devices hosting at least one
/// layer also carry the MicroBlaze/DMA base design.
std::vector<dfc::hw::ResourceUsage> usage_by_device(
    const NetworkSpec& spec, const std::vector<std::size_t>& layer_device,
    std::size_t num_devices, const dfc::hw::CostModel& cost) {
  std::vector<dfc::hw::ResourceUsage> usage(num_devices);
  std::vector<bool> hosts_layer(num_devices, false);
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const std::size_t d = i < layer_device.size() ? layer_device[i] : 0;
    usage[d] += dfc::hw::estimate_layer(spec.layers[i], cost);
    hosts_layer[d] = true;
  }
  for (std::size_t d = 0; d < num_devices; ++d) {
    usage[d].lut *= cost.lut_calibration;
    usage[d].ff *= cost.ff_calibration;
    if (hosts_layer[d]) usage[d] += cost.base_design;
  }
  return usage;
}

void check_budget(const NetworkSpec& spec, const std::vector<std::size_t>& layer_device,
                  std::size_t num_devices, const VerifyOptions& vopts,
                  std::vector<Diagnostic>& out) {
  const auto usage = usage_by_device(spec, layer_device, num_devices, vopts.cost_model);
  const dfc::hw::Device& dev = vopts.device;
  for (std::size_t d = 0; d < num_devices; ++d) {
    const dfc::hw::ResourceUsage& u = usage[d];
    const std::string entity = "fpga" + std::to_string(d);
    std::string over;
    const auto flag = [&](const char* res, double used, double avail) {
      if (used > avail) {
        if (!over.empty()) over += ", ";
        over += std::string(res) + " " + fmt_units(used) + "/" + fmt_units(avail);
      }
    };
    flag("lut", u.lut, dev.luts);
    flag("ff", u.ff, dev.ffs);
    flag("bram36", u.bram36, dev.bram36);
    flag("dsp", u.dsp, dev.dsps);
    if (!over.empty()) {
      out.push_back({Code::DF401, entity,
                     "exceeds " + dev.name + " budget: " + over});
      continue;
    }
    const dfc::hw::ResourceUsage frac = dev.utilization(u);
    const double worst = std::max({frac.lut, frac.ff, frac.bram36, frac.dsp});
    if (worst > vopts.headroom_warn_fraction) {
      out.push_back({Code::DF402, entity,
                     "peak utilization " + fmt_units(worst * 100.0) + "% of " + dev.name +
                         " is above the " + fmt_units(vopts.headroom_warn_fraction * 100.0) +
                         "% headroom threshold"});
    }
  }
}

/// Partition legality (DF403). `require_monotone` matches build_multi_fpga's
/// contract; the single-context builder only needs coverage.
bool check_partition(const NetworkSpec& spec, const std::vector<std::size_t>& layer_device,
                     bool require_monotone, std::vector<Diagnostic>& out) {
  if (layer_device.size() != spec.layers.size()) {
    out.push_back({Code::DF403, "partition",
                   "layer_device has " + std::to_string(layer_device.size()) +
                       " entries for " + std::to_string(spec.layers.size()) + " layer(s)"});
    return false;
  }
  bool ok = true;
  if (require_monotone) {
    for (std::size_t i = 1; i < layer_device.size(); ++i) {
      if (layer_device[i] < layer_device[i - 1]) {
        out.push_back({Code::DF403, "L" + std::to_string(i),
                       "device assignment goes backwards (" +
                           std::to_string(layer_device[i - 1]) + " -> " +
                           std::to_string(layer_device[i]) +
                           "); the design is a forward pipeline"});
        ok = false;
        break;
      }
    }
  }
  return ok;
}

}  // namespace

// --- spec checks (DF1xx) -----------------------------------------------------

std::vector<Diagnostic> check_spec(const NetworkSpec& spec) {
  std::vector<Diagnostic> out;
  if (spec.layers.empty()) {
    out.push_back({Code::DF101, "network", "network has no layers"});
    return out;
  }

  Shape3 shape = spec.input_shape;
  if (shape.c <= 0 || shape.h <= 0 || shape.w <= 0) {
    out.push_back({Code::DF101, "network", "input shape " + shape.str() + " is not positive"});
    return out;
  }

  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const auto& layer = spec.layers[i];
    const std::string where = "L" + std::to_string(i);

    if (const auto* conv = std::get_if<ConvLayerSpec>(&layer)) {
      if (!(conv->in_shape == shape)) {
        out.push_back({Code::DF101, where, "input shape mismatch, expected " + shape.str() +
                                               " got " + conv->in_shape.str()});
      }
      if (conv->in_ports <= 0 || conv->out_ports <= 0) {
        out.push_back({Code::DF102, where, "port counts must be positive"});
        shape = conv->out_shape();
        continue;
      }
      if (shape.c % conv->in_ports != 0) {
        out.push_back({Code::DF102, where,
                       "IN_FM (" + std::to_string(shape.c) + ") not divisible by IN_PORTS (" +
                           std::to_string(conv->in_ports) + ")"});
      }
      if (conv->out_fm % conv->out_ports != 0) {
        out.push_back({Code::DF102, where,
                       "OUT_FM (" + std::to_string(conv->out_fm) +
                           ") not divisible by OUT_PORTS (" +
                           std::to_string(conv->out_ports) + ")"});
      }
      const std::int64_t want_w = conv->out_fm * conv->in_shape.c * conv->kh * conv->kw;
      if (static_cast<std::int64_t>(conv->weights.size()) != want_w) {
        out.push_back({Code::DF103, where,
                       "weight table has " + std::to_string(conv->weights.size()) +
                           " entries, expected " + std::to_string(want_w)});
      }
      if (static_cast<std::int64_t>(conv->biases.size()) != conv->out_fm) {
        out.push_back({Code::DF103, where,
                       "bias table has " + std::to_string(conv->biases.size()) +
                           " entries, expected " + std::to_string(conv->out_fm)});
      }
      if (conv->pad > 0 && conv->use_filter_chain) {
        out.push_back({Code::DF104, where,
                       "the element-level filter chain supports only P = 0 "
                       "(zero-padding needs the fused memory structure)"});
      }
      shape = conv->out_shape();
    } else if (const auto* pool = std::get_if<PoolLayerSpec>(&layer)) {
      if (!(pool->in_shape == shape)) {
        out.push_back({Code::DF101, where, "input shape mismatch, expected " + shape.str() +
                                               " got " + pool->in_shape.str()});
      }
      if (pool->ports <= 0) {
        out.push_back({Code::DF102, where, "pool core count must be positive"});
        shape = pool->out_shape();
        continue;
      }
      if (shape.c % pool->ports != 0) {
        out.push_back({Code::DF102, where,
                       "channels (" + std::to_string(shape.c) + ") not divisible by cores (" +
                           std::to_string(pool->ports) + ")"});
      }
      shape = pool->out_shape();
    } else {
      const auto& fcn = std::get<FcnLayerSpec>(layer);
      if (fcn.in_count != shape.volume()) {
        out.push_back({Code::DF105, where,
                       "classifier expects " + std::to_string(fcn.in_count) +
                           " inputs but upstream delivers " + std::to_string(shape.volume())});
      }
      if (static_cast<std::int64_t>(fcn.weights.size()) != fcn.in_count * fcn.out_count) {
        out.push_back({Code::DF103, where,
                       "weight table has " + std::to_string(fcn.weights.size()) +
                           " entries, expected " + std::to_string(fcn.in_count * fcn.out_count)});
      }
      if (static_cast<std::int64_t>(fcn.biases.size()) != fcn.out_count) {
        out.push_back({Code::DF103, where,
                       "bias table has " + std::to_string(fcn.biases.size()) +
                           " entries, expected " + std::to_string(fcn.out_count)});
      }
      shape = fcn.out_shape();
    }

    if (shape.c <= 0 || shape.h <= 0 || shape.w <= 0) {
      out.push_back({Code::DF101, where, "output shape " + shape.str() + " is not positive"});
      return out;  // downstream shapes are meaningless
    }

    // Divisibility between consecutive port counts, required by the
    // round-robin interleave (Sec. IV-A).
    if (i > 0) {
      const int up = dfc::core::layer_out_ports(spec.layers[i - 1]);
      const int down = dfc::core::layer_in_ports(layer);
      if (up > 0 && down > 0 &&
          !(up == down || (up < down && down % up == 0) || (up > down && up % down == 0))) {
        out.push_back({Code::DF102, where,
                       "incompatible port counts " + std::to_string(up) + " -> " +
                           std::to_string(down) + " (round-robin interleave needs one to "
                           "divide the other)"});
      }
    }
  }
  return out;
}

// --- graph checks (DF0xx, DF3xx) ---------------------------------------------

VerifyReport verify_graph(const DesignGraph& graph) {
  VerifyReport r;
  r.channels_checked = graph.channels.size();
  r.stages_checked = graph.nodes.size();
  auto& out = r.diagnostics;

  // DF003: duplicate channel / process names (one shared namespace, same as
  // SimContext's find_fifo/trace entities).
  {
    std::vector<std::string> names;
    names.reserve(graph.channels.size() + graph.nodes.size());
    for (const auto& c : graph.channels) names.push_back(c.name);
    for (const auto& n : graph.nodes) names.push_back(n.name);
    std::sort(names.begin(), names.end());
    for (std::size_t i = 1; i < names.size(); ++i) {
      if (names[i] == names[i - 1] && (i == 1 || names[i] != names[i - 2])) {
        out.push_back({Code::DF003, names[i], "duplicate channel or process name"});
      }
    }
  }

  // DF001 / DF002: unbound channel endpoints.
  for (const auto& c : graph.channels) {
    if (c.producer < 0) {
      out.push_back({Code::DF001, c.name,
                     "channel has no producer; any consumer starves forever"});
    }
    if (c.consumer < 0) {
      out.push_back({Code::DF002, c.name,
                     "channel has no consumer; it fills up and wedges its producer"});
    }
  }

  // DF004: stages unreachable from any source (a node with no inputs).
  {
    std::vector<char> reached(graph.nodes.size(), 0);
    std::vector<int> work;
    for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
      if (graph.nodes[n].inputs.empty()) {
        reached[n] = 1;
        work.push_back(static_cast<int>(n));
      }
    }
    while (!work.empty()) {
      const int n = work.back();
      work.pop_back();
      for (int ch : graph.nodes[static_cast<std::size_t>(n)].outputs) {
        const int m = graph.channels[static_cast<std::size_t>(ch)].consumer;
        if (m >= 0 && !reached[static_cast<std::size_t>(m)]) {
          reached[static_cast<std::size_t>(m)] = 1;
          work.push_back(m);
        }
      }
    }
    for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
      if (!reached[n]) {
        out.push_back({Code::DF004, graph.nodes[n].name,
                       "stage is unreachable from any source; it never sees data"});
      }
    }
  }

  // DF302: channel cycles. Every FIFO starts empty, so a cycle means every
  // process on it waits for data that can only come from the cycle itself —
  // a guaranteed circular wait once the feedback path is exercised.
  {
    enum : char { kWhite, kGrey, kBlack };
    std::vector<char> color(graph.nodes.size(), kWhite);
    // Iterative DFS; on a grey->grey edge, report the channel closing the cycle.
    struct Frame {
      int node;
      std::size_t next_out = 0;
    };
    for (std::size_t root = 0; root < graph.nodes.size(); ++root) {
      if (color[root] != kWhite) continue;
      std::vector<Frame> stack{{static_cast<int>(root)}};
      color[root] = kGrey;
      while (!stack.empty()) {
        Frame& f = stack.back();
        const auto& outputs = graph.nodes[static_cast<std::size_t>(f.node)].outputs;
        if (f.next_out >= outputs.size()) {
          color[static_cast<std::size_t>(f.node)] = kBlack;
          stack.pop_back();
          continue;
        }
        const int ch = outputs[f.next_out++];
        const int m = graph.channels[static_cast<std::size_t>(ch)].consumer;
        if (m < 0) continue;
        if (color[static_cast<std::size_t>(m)] == kGrey) {
          out.push_back({Code::DF302, graph.channels[static_cast<std::size_t>(ch)].name,
                         "channel closes a feedback cycle through " +
                             graph.nodes[static_cast<std::size_t>(m)].name +
                             "; FIFOs start empty, so the loop deadlocks on first use"});
        } else if (color[static_cast<std::size_t>(m)] == kWhite) {
          color[static_cast<std::size_t>(m)] = kGrey;
          stack.push_back({m});
        }
      }
    }
  }

  // DF301: a sink that insists on more words per image than the pipeline
  // statically delivers waits forever on the missing tail.
  if (graph.delivered_per_image > 0) {
    for (const auto& n : graph.nodes) {
      if (n.demand_per_image > graph.delivered_per_image) {
        out.push_back({Code::DF301, n.name,
                       "sink demands " + std::to_string(n.demand_per_image) +
                           " words/image but the pipeline delivers " +
                           std::to_string(graph.delivered_per_image)});
      }
    }
  }
  return r;
}

// --- top-level entry points --------------------------------------------------

namespace {

void append(VerifyReport& r, std::vector<Diagnostic> ds) {
  for (auto& d : ds) r.diagnostics.push_back(std::move(d));
}

void merge_graph_checks(VerifyReport& r, const DesignGraph& graph) {
  VerifyReport g = verify_graph(graph);
  r.channels_checked = g.channels_checked;
  r.stages_checked = g.stages_checked;
  append(r, std::move(g.diagnostics));
}

}  // namespace

VerifyReport verify_design(const NetworkSpec& spec, const BuildOptions& options,
                           const VerifyOptions& vopts) {
  VerifyReport r;
  r.design = spec.name;

  std::vector<Diagnostic> specd = check_spec(spec);
  const bool shapes_ok = !has_errors(specd);
  append(r, std::move(specd));

  std::vector<std::size_t> layer_device;
  if (!options.layer_device.empty()) {
    if (check_partition(spec, options.layer_device, /*require_monotone=*/false,
                        r.diagnostics)) {
      layer_device = options.layer_device;
    }
  }
  r.devices = 1;
  for (std::size_t d : layer_device) r.devices = std::max(r.devices, d + 1);

  if (!shapes_ok) return r;  // rate/graph/budget math is meaningless on broken shapes

  r.predicted_interval_cycles =
      check_rates(spec, options, layer_device, /*credits=*/0, r.diagnostics);
  merge_graph_checks(r, build_design_graph(spec, options));
  if (vopts.check_resources) {
    check_budget(spec, layer_device, r.devices, vopts, r.diagnostics);
  }
  return r;
}

VerifyReport verify_design_multi(const NetworkSpec& spec,
                                 const std::vector<std::size_t>& layer_device,
                                 const BuildOptions& options, int link_credits,
                                 const VerifyOptions& vopts) {
  VerifyReport r;
  r.design = spec.name;

  std::vector<Diagnostic> specd = check_spec(spec);
  const bool shapes_ok = !has_errors(specd);
  append(r, std::move(specd));

  const bool partition_ok =
      check_partition(spec, layer_device, /*require_monotone=*/true, r.diagnostics);
  r.devices = 1;
  if (partition_ok) {
    for (std::size_t d : layer_device) r.devices = std::max(r.devices, d + 1);
  }
  if (link_credits < 0) {
    r.diagnostics.push_back({Code::DF203, "interlink", "credit count must be non-negative"});
  }
  if (!shapes_ok || !partition_ok) return r;

  r.predicted_interval_cycles =
      check_rates(spec, options, layer_device, link_credits, r.diagnostics);
  merge_graph_checks(r, build_design_graph_multi(spec, layer_device, options, link_credits));
  if (vopts.check_resources) {
    check_budget(spec, layer_device, r.devices, vopts, r.diagnostics);
  }
  return r;
}

// --- report rendering --------------------------------------------------------

std::size_t VerifyReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

std::size_t VerifyReport::warnings() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kWarning; }));
}

bool VerifyReport::has(Code code) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

std::string VerifyReport::render() const {
  std::ostringstream os;
  os << "verify '" << design << "': " << devices << " device(s), " << stages_checked
     << " stage(s), " << channels_checked << " channel(s), predicted interval "
     << predicted_interval_cycles << " cycles/image\n";
  for (const Diagnostic& d : diagnostics) os << "  " << d.str() << "\n";
  if (diagnostics.empty()) {
    os << "  clean: no diagnostics\n";
  } else {
    os << "  " << errors() << " error(s), " << warnings() << " warning(s)\n";
  }
  return os.str();
}

std::string VerifyReport::to_json() const {
  std::ostringstream os;
  os << "{\"design\": \"" << json_escape(design) << "\", \"devices\": " << devices
     << ", \"predicted_interval_cycles\": " << predicted_interval_cycles
     << ", \"stages\": " << stages_checked << ", \"channels\": " << channels_checked
     << ", \"errors\": " << errors() << ", \"warnings\": " << warnings()
     << ", \"clean\": " << (clean() ? "true" : "false") << ", \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) os << ", ";
    os << "{\"code\": \"" << code_name(d.code) << "\", \"severity\": \""
       << severity_name(d.severity) << "\", \"entity\": \"" << json_escape(d.entity)
       << "\", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

void VerifyReport::throw_if_errors() const {
  std::vector<Diagnostic> errs;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) errs.push_back(d);
  }
  if (!errs.empty()) throw VerifyError(std::move(errs));
}

// --- pre-flight hook ---------------------------------------------------------

namespace {

void preflight_single(const NetworkSpec& spec, const BuildOptions& options) {
  VerifyOptions vopts;
  vopts.check_resources = false;  // budget overruns are advisory at build time
  verify_design(spec, options, vopts).throw_if_errors();
}

void preflight_multi(const NetworkSpec& spec, const std::vector<std::size_t>& layer_device,
                     const BuildOptions& options, int link_credits) {
  VerifyOptions vopts;
  vopts.check_resources = false;
  verify_design_multi(spec, layer_device, options, link_credits, vopts).throw_if_errors();
}

// Linking dfcnn_verify is opting in: the hooks are live (though dormant until
// BuildOptions::preflight_verify is set).
const bool g_registered = [] {
  dfc::core::set_preflight_hook(&preflight_single);
  dfc::core::set_multi_preflight_hook(&preflight_multi);
  return true;
}();

}  // namespace

void install_preflight() {
  (void)g_registered;
  dfc::core::set_preflight_hook(&preflight_single);
  dfc::core::set_multi_preflight_hook(&preflight_multi);
}

}  // namespace dfc::verify
