// Deterministic fault plans for SEU/stall injection.
//
// A FaultPlan is pure data: which named FIFO gets hit, when, and how —
// plus the serve-level fault events (replica kills, corrupted batches) the
// serving planner consumes. Everything is keyed to simulated cycles of the
// 100 MHz fabric clock, so a plan replays bit-identically on any machine
// and any DFCNN_SWEEP_THREADS setting. The fault model covers the failure
// classes a long-lived streaming accelerator actually sees:
//
//   * kBitFlip       — an SEU in a FIFO's BRAM/LUTRAM storage;
//   * kJam           — a wedged AXI-Stream ready/valid handshake;
//   * kDropFlit      — a DMA beat lost in transfer;
//   * kDuplicateFlit — a DMA beat delivered twice.
//
// The paper's full-buffering dataflow reads every off-chip value exactly
// once, so a single lost or corrupted flit poisons every downstream window
// with no natural resync point — which is exactly what campaigns measure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfc::fault {

enum class FaultKind : std::uint8_t {
  kBitFlip = 0,
  kJam = 1,
  kDropFlit = 2,
  kDuplicateFlit = 3,
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault against a named FIFO (builder channel names such as
/// "dma.in", "L0.win0", "L2.out"). Fires at the start of `cycle`.
struct FaultSpec {
  FaultKind kind = FaultKind::kBitFlip;
  std::string fifo;
  std::uint64_t cycle = 0;
  std::uint32_t bit = 0;         ///< payload bit index for kBitFlip
  std::uint64_t jam_cycles = 0;  ///< handshake wedge duration for kJam
};

/// Kill a serve replica at a simulated cycle: its in-flight batch fails and
/// the replica leaves the pool (quarantine).
struct ReplicaKillSpec {
  std::size_t replica = 0;
  std::uint64_t cycle = 0;
};

/// Corrupt the `nth_batch`-th batch dispatched on `replica` (0-based): it
/// completes on time but detection flags its outputs, forcing a retry.
struct BatchCorruptSpec {
  std::size_t replica = 0;
  std::size_t nth_batch = 0;
};

struct FaultPlan {
  std::vector<FaultSpec> fifo_faults;
  std::vector<ReplicaKillSpec> replica_kills;
  std::vector<BatchCorruptSpec> batch_corruptions;

  /// Arm the per-FIFO checksum/range sidecars (and the DMA stream guard in
  /// the campaign runner) while this plan is attached.
  bool integrity_guards = true;
  /// Range bound for the guards: the toy networks keep activations O(1), so
  /// any payload beyond this is a corruption, not data.
  float range_bound = 1e6f;

  bool empty() const {
    return fifo_faults.empty() && replica_kills.empty() && batch_corruptions.empty();
  }
};

}  // namespace dfc::fault
