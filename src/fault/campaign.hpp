// Seeded fault-injection campaigns: sweep sites × cycles, classify outcomes.
//
// A campaign measures how the compiled design behaves under the FaultPlan
// fault model: one golden (fault-free) run fixes the reference outputs and
// the injection window, then `trials` independent runs each inject a single
// randomly drawn fault and compare against the golden batch. Outcomes follow
// the standard SEU taxonomy:
//
//   masked              — outputs byte-identical to the golden run;
//   detected_recovered  — wrong outputs or an aborted run, but a detector
//                         (checksum, range, framing, watchdog) fired, so a
//                         retry recovers the correct result;
//   sdc                 — silent data corruption: wrong outputs, no detector;
//   hang                — the run blew its cycle budget with detection off.
//
// Trials are seeded from (seed, trial index) and run on the shared worker
// pool with results stored by index, so a campaign's CSV is byte-identical
// across machines and DFCNN_SWEEP_THREADS settings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/network_spec.hpp"
#include "fault/fault_plan.hpp"

namespace dfc::fault {

enum class TrialOutcome : std::uint8_t {
  kMasked = 0,
  kDetectedRecovered = 1,
  kSdc = 2,
  kHang = 3,
};

const char* trial_outcome_name(TrialOutcome outcome);

struct CampaignConfig {
  std::size_t trials = 64;
  std::uint64_t seed = 1;
  std::size_t batch = 4;       ///< images streamed per trial
  bool detection = true;       ///< integrity guards + stream guard + watchdog
  std::size_t threads = 0;     ///< worker pool size (0 = auto)
  double budget_factor = 3.0;  ///< hang budget = factor × analytic fill+drain

  /// Design variant to attack. A non-empty layer_device builds the
  /// partitioned design (LinkChannel boundaries), whose inter-FPGA FIFOs
  /// (L<i>.xfpga<p>) then appear among the injectable sites — the campaign
  /// covers link bit-flips/drops/jams with the same detectors.
  core::BuildOptions build{};
};

struct TrialResult {
  std::size_t trial = 0;
  FaultSpec fault;
  bool landed = false;    ///< the fault actually mutated simulated state
  bool detected = false;  ///< any detector fired during the run
  std::string detector;   ///< "", "checksum", "range", "framing", "watchdog"
  TrialOutcome outcome = TrialOutcome::kMasked;
  std::uint64_t run_cycles = 0;
  /// Added latency of recover-by-retry: the retry is a fresh deterministic
  /// run costing exactly the fault-free cycles again, so the recovery cost
  /// is the cycles burnt on the faulty attempt before abort/mismatch.
  std::uint64_t recovery_latency_cycles = 0;
};

struct CampaignResult {
  std::string design;
  CampaignConfig config;
  std::uint64_t fault_free_cycles = 0;
  std::uint64_t hang_budget = 0;
  std::vector<std::string> sites;  ///< injectable FIFO names
  std::vector<TrialResult> trials;

  std::size_t masked = 0;
  std::size_t detected_recovered = 0;
  std::size_t sdc = 0;
  std::size_t hang = 0;

  double sdc_rate() const;
  /// Mean/max recovery latency over detected-recovered trials (0 when none).
  double mean_recovery_latency_cycles() const;
  std::uint64_t max_recovery_latency_cycles() const;

  std::string csv() const;
  std::string summary_table() const;
  /// Grep-friendly one-liner for CI assertions.
  std::string classification_line() const;
};

/// Cycle budget after which a faulted run is declared hung, derived from the
/// DSE throughput model (Eq. 4 pipeline interval): fill (sum of per-stage
/// cycles) plus batch × interval, scaled by `factor` plus fixed slack. The
/// fault-free run always fits; a wedged pipeline always trips it.
std::uint64_t hang_budget_cycles(const core::NetworkSpec& spec, std::size_t batch,
                                 double factor = 3.0);

CampaignResult run_campaign(const core::NetworkSpec& spec, const CampaignConfig& config);

}  // namespace dfc::fault
