// FaultInjector: executes a FaultPlan against one SimContext.
//
// Attached like a trace sink (SimContext::attach_cycle_hook), the injector
// runs at the start of every cycle, before phase 1: it releases expired
// handshake jams and applies every fault whose cycle has arrived. Attaching
// forces the naive every-process-every-cycle scheduler and disables
// fast_forward — injected state changes (a jam flipping can_pop/can_push, a
// dropped flit) would otherwise violate the wake_cycle() no-op contract the
// activity-aware scheduler relies on. With no injector attached the
// simulation hot path keeps its null-check-only cost.
//
// The injector doubles as the FaultListener of the FIFO integrity guards it
// arms, collecting cycle-stamped detection records for the campaign runner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/sim_context.hpp"
#include "fault/fault_plan.hpp"

namespace dfc::fault {

/// One injector drives one run: resetting the context rewinds the clock but
/// not the injector's applied-fault bookkeeping, so build a fresh injector
/// (or context) per trial.
class FaultInjector final : public df::CycleHook, public df::FaultListener {
 public:
  explicit FaultInjector(FaultPlan plan);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Resolves the plan's FIFO names against `ctx` (ConfigError on a miss),
  /// arms the integrity guards when the plan asks for them, and registers as
  /// the context's cycle hook. The context must outlive the attachment.
  void attach(df::SimContext& ctx);

  /// Releases jams, disarms guards and unregisters the hook. Idempotent;
  /// also run by the destructor.
  void detach();

  void on_cycle_start(std::uint64_t cycle) override;
  void on_integrity_violation(const df::FifoBase& fifo, const char* what) override;

  struct InjectionRecord {
    FaultSpec spec;
    std::uint64_t cycle = 0;  ///< when the fault fired
    bool landed = false;      ///< whether simulated state actually mutated
  };
  struct DetectionRecord {
    std::uint64_t cycle = 0;
    std::string fifo;
    std::string what;  ///< "checksum" or "range"
  };

  const FaultPlan& plan() const { return plan_; }
  const std::vector<InjectionRecord>& injections() const { return injections_; }
  const std::vector<DetectionRecord>& detections() const { return detections_; }
  bool any_injection_landed() const;
  bool any_detection() const { return !detections_.empty(); }
  std::uint64_t first_detection_cycle() const;  ///< kNever while clean

  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

 private:
  struct PendingFault {
    FaultSpec spec;
    df::FifoBase* target = nullptr;
    bool applied = false;
  };
  struct ActiveJam {
    df::FifoBase* target = nullptr;
    std::uint64_t until = 0;  ///< first cycle with the handshake free again
  };

  FaultPlan plan_;
  df::SimContext* ctx_ = nullptr;
  std::vector<PendingFault> pending_;
  std::vector<ActiveJam> jams_;
  std::vector<InjectionRecord> injections_;
  std::vector<DetectionRecord> detections_;
};

}  // namespace dfc::fault
