#include "fault/campaign.hpp"

#include <algorithm>
#include <sstream>

#include "axis/flit.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/builder.hpp"
#include "core/harness.hpp"
#include "dse/throughput_model.hpp"
#include "fault/injector.hpp"

namespace dfc::fault {

namespace {

// Fixed image seed: trial randomness covers sites/cycles/bits, not data —
// every trial must share the golden run's inputs.
constexpr std::uint64_t kImageSeed = 7;

std::vector<Tensor> campaign_images(const core::NetworkSpec& spec, std::size_t count) {
  Rng rng(kImageSeed);
  std::vector<Tensor> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Tensor t(spec.input_shape);
    for (float& v : t.flat()) v = rng.uniform(-1.0f, 1.0f);
    images.push_back(std::move(t));
  }
  return images;
}

FaultSpec draw_fault(Rng& rng, const std::vector<std::string>& sites,
                     std::uint64_t window_cycles) {
  FaultSpec spec;
  spec.kind = static_cast<FaultKind>(rng.next_below(4));
  spec.fifo = sites[rng.next_below(sites.size())];
  // Fire strictly inside the fault-free run so the injection always happens
  // before the unfaulted design would have finished.
  spec.cycle = 1 + rng.next_below(std::max<std::uint64_t>(1, window_cycles - 1));
  spec.bit = static_cast<std::uint32_t>(rng.next_below(axis::kFlitFaultBits));
  spec.jam_cycles = 8 + rng.next_below(2041);
  return spec;
}

}  // namespace

const char* trial_outcome_name(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kMasked: return "masked";
    case TrialOutcome::kDetectedRecovered: return "detected_recovered";
    case TrialOutcome::kSdc: return "sdc";
    case TrialOutcome::kHang: return "hang";
  }
  return "unknown";
}

std::uint64_t hang_budget_cycles(const core::NetworkSpec& spec, std::size_t batch,
                                 double factor) {
  const dse::TimingEstimate est = dse::estimate_timing(spec);
  std::int64_t fill = 0;
  for (const auto& stage : est.stages) fill += stage.cycles_per_image;
  const double budget =
      factor * (static_cast<double>(fill) +
                static_cast<double>(est.interval_cycles) * static_cast<double>(batch)) +
      10'000.0;
  return static_cast<std::uint64_t>(budget);
}

CampaignResult run_campaign(const core::NetworkSpec& spec, const CampaignConfig& config) {
  DFC_REQUIRE(config.trials > 0, "campaign needs at least one trial");
  DFC_REQUIRE(config.batch > 0, "campaign batch must be positive");

  CampaignResult result;
  result.design = spec.name;
  result.config = config;

  const std::vector<Tensor> images = campaign_images(spec, config.batch);

  // Golden reference: one fault-free run fixes the expected outputs, the
  // injection window and the list of injectable sites.
  std::vector<std::vector<float>> golden;
  {
    core::AcceleratorHarness harness(core::build_accelerator(spec, config.build));
    const core::BatchResult r = harness.run_batch(images);
    result.fault_free_cycles = r.total_cycles();
    golden = r.outputs;
    const df::SimContext& ctx = *harness.accelerator().ctx;
    for (std::size_t i = 0; i < ctx.fifo_count(); ++i) {
      result.sites.push_back(ctx.fifo(i).name());
    }
  }
  result.hang_budget = hang_budget_cycles(spec, config.batch, config.budget_factor);
  if (!config.build.layer_device.empty()) {
    // The analytic budget knows nothing about link traversal/serialization
    // fill time; anchor a partitioned design's budget to its measured
    // fault-free run so slow links cannot misclassify clean trials as hangs.
    result.hang_budget = std::max(
        result.hang_budget,
        static_cast<std::uint64_t>(config.budget_factor *
                                   static_cast<double>(result.fault_free_cycles)) +
            10'000);
  }

  result.trials.resize(config.trials);
  dfc::run_indexed(config.trials, config.threads, [&](std::size_t t) {
    TrialResult& tr = result.trials[t];
    tr.trial = t;
    Rng rng((config.seed << 20) ^ (t + 1));
    tr.fault = draw_fault(rng, result.sites, result.fault_free_cycles);

    core::AcceleratorHarness harness(core::build_accelerator(spec, config.build));
    core::Accelerator& acc = harness.accelerator();

    FaultPlan plan;
    plan.fifo_faults.push_back(tr.fault);
    plan.integrity_guards = config.detection;
    FaultInjector injector(std::move(plan));
    injector.attach(*acc.ctx);
    if (config.detection) acc.sink->set_stream_guard(true, injector.plan().range_bound);

    bool aborted = false;
    std::vector<std::vector<float>> outputs;
    try {
      const core::BatchResult r = harness.run_batch(images, result.hang_budget);
      // Timeouts and deadlocks now come back as a classified partial result
      // (RunStatus) instead of an exception; total_cycles() of a partial run
      // is the cycles burnt up to the watchdog abort.
      tr.run_cycles = r.total_cycles();
      if (r.ok()) {
        outputs = r.outputs;
      } else {
        aborted = true;
      }
    } catch (const dfc::Error&) {
      // Stream-protocol assertions (integrity/framing guards tripping inside
      // the simulation) still abort by throwing.
      aborted = true;
      tr.run_cycles = acc.ctx->cycle();
    }

    tr.landed = injector.any_injection_landed();
    tr.detected = injector.any_detection() || acc.sink->guard_framing_errors() > 0 ||
                  acc.sink->guard_range_errors() > 0 || (config.detection && aborted);
    if (injector.any_detection()) {
      tr.detector = injector.detections().front().what;
    } else if (acc.sink->guard_framing_errors() > 0) {
      tr.detector = "framing";
    } else if (acc.sink->guard_range_errors() > 0) {
      tr.detector = "range";
    } else if (config.detection && aborted) {
      tr.detector = "watchdog";
    }

    if (aborted) {
      tr.outcome = config.detection ? TrialOutcome::kDetectedRecovered : TrialOutcome::kHang;
    } else if (outputs == golden) {
      tr.outcome = TrialOutcome::kMasked;
    } else {
      tr.outcome = tr.detected ? TrialOutcome::kDetectedRecovered : TrialOutcome::kSdc;
    }
    if (tr.outcome == TrialOutcome::kDetectedRecovered) {
      tr.recovery_latency_cycles = tr.run_cycles;
    }
  });

  for (const TrialResult& tr : result.trials) {
    switch (tr.outcome) {
      case TrialOutcome::kMasked: ++result.masked; break;
      case TrialOutcome::kDetectedRecovered: ++result.detected_recovered; break;
      case TrialOutcome::kSdc: ++result.sdc; break;
      case TrialOutcome::kHang: ++result.hang; break;
    }
  }
  return result;
}

double CampaignResult::sdc_rate() const {
  return trials.empty() ? 0.0 : static_cast<double>(sdc) / static_cast<double>(trials.size());
}

double CampaignResult::mean_recovery_latency_cycles() const {
  std::uint64_t sum = 0;
  std::size_t n = 0;
  for (const TrialResult& tr : trials) {
    if (tr.outcome == TrialOutcome::kDetectedRecovered) {
      sum += tr.recovery_latency_cycles;
      ++n;
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

std::uint64_t CampaignResult::max_recovery_latency_cycles() const {
  std::uint64_t worst = 0;
  for (const TrialResult& tr : trials) {
    worst = std::max(worst, tr.recovery_latency_cycles);
  }
  return worst;
}

std::string CampaignResult::csv() const {
  CsvWriter csv({"trial", "kind", "fifo", "cycle", "bit", "jam_cycles", "landed", "detected",
                 "detector", "outcome", "run_cycles", "recovery_latency_cycles"});
  for (const TrialResult& tr : trials) {
    csv.row_values(tr.trial, fault_kind_name(tr.fault.kind), tr.fault.fifo, tr.fault.cycle,
                   tr.fault.bit, tr.fault.jam_cycles, tr.landed ? 1 : 0, tr.detected ? 1 : 0,
                   tr.detector, trial_outcome_name(tr.outcome), tr.run_cycles,
                   tr.recovery_latency_cycles);
  }
  return csv.str();
}

std::string CampaignResult::summary_table() const {
  const double n = static_cast<double>(trials.size());
  const auto rate = [n](std::size_t count) { return fmt_percent(static_cast<double>(count) / n); };
  AsciiTable table({"outcome", "trials", "rate"});
  table.add_row({"masked", std::to_string(masked), rate(masked)});
  table.add_row({"detected_recovered", std::to_string(detected_recovered),
                 rate(detected_recovered)});
  table.add_row({"sdc", std::to_string(sdc), rate(sdc)});
  table.add_row({"hang", std::to_string(hang), rate(hang)});

  std::ostringstream os;
  os << table.render();
  os << "fault-free batch: " << fault_free_cycles << " cycles over " << sites.size()
     << " injectable sites (hang budget " << hang_budget << " cycles)\n";
  os << "recovery latency: mean " << fmt_fixed(mean_recovery_latency_cycles(), 0)
     << " cycles, max " << max_recovery_latency_cycles() << " cycles\n";
  return os.str();
}

std::string CampaignResult::classification_line() const {
  std::ostringstream os;
  os << "classification: masked=" << masked << " detected_recovered=" << detected_recovered
     << " sdc=" << sdc << " hang=" << hang;
  return os.str();
}

}  // namespace dfc::fault
