#include "fault/injector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dfc::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kJam: return "jam";
    case FaultKind::kDropFlit: return "drop";
    case FaultKind::kDuplicateFlit: return "duplicate";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

FaultInjector::~FaultInjector() { detach(); }

void FaultInjector::attach(df::SimContext& ctx) {
  DFC_REQUIRE(ctx_ == nullptr, "FaultInjector::attach: already attached");
  pending_.clear();
  pending_.reserve(plan_.fifo_faults.size());
  for (const FaultSpec& spec : plan_.fifo_faults) {
    df::FifoBase* target = ctx.find_fifo(spec.fifo);
    DFC_REQUIRE(target != nullptr, "FaultInjector: unknown FIFO '" + spec.fifo + "'");
    pending_.push_back(PendingFault{spec, target, false});
  }
  ctx_ = &ctx;
  if (plan_.integrity_guards) ctx.enable_integrity_guards(this, plan_.range_bound);
  ctx.attach_cycle_hook(this);
}

void FaultInjector::detach() {
  if (ctx_ == nullptr) return;
  for (ActiveJam& jam : jams_) jam.target->set_fault_jammed(false);
  jams_.clear();
  if (plan_.integrity_guards) ctx_->disable_integrity_guards();
  ctx_->attach_cycle_hook(nullptr);
  ctx_ = nullptr;
}

void FaultInjector::on_cycle_start(std::uint64_t cycle) {
  // Release expired jams first so an exactly-N-cycle wedge frees the
  // handshake at the cycle it is due.
  for (std::size_t i = jams_.size(); i-- > 0;) {
    if (cycle >= jams_[i].until) {
      jams_[i].target->set_fault_jammed(false);
      jams_[i] = jams_.back();
      jams_.pop_back();
    }
  }
  for (PendingFault& p : pending_) {
    if (p.applied || cycle < p.spec.cycle) continue;
    p.applied = true;
    bool landed = false;
    switch (p.spec.kind) {
      case FaultKind::kBitFlip:
        landed = p.target->fault_corrupt_payload(p.spec.bit);
        break;
      case FaultKind::kJam:
        p.target->set_fault_jammed(true);
        jams_.push_back(
            ActiveJam{p.target, cycle + std::max<std::uint64_t>(1, p.spec.jam_cycles)});
        landed = true;
        break;
      case FaultKind::kDropFlit:
        landed = p.target->fault_drop_front();
        break;
      case FaultKind::kDuplicateFlit:
        landed = p.target->fault_duplicate_front();
        break;
    }
    injections_.push_back(InjectionRecord{p.spec, cycle, landed});
  }
}

void FaultInjector::on_integrity_violation(const df::FifoBase& fifo, const char* what) {
  detections_.push_back(
      DetectionRecord{ctx_ != nullptr ? ctx_->cycle() : 0, fifo.name(), what});
}

bool FaultInjector::any_injection_landed() const {
  return std::any_of(injections_.begin(), injections_.end(),
                     [](const InjectionRecord& r) { return r.landed; });
}

std::uint64_t FaultInjector::first_detection_cycle() const {
  return detections_.empty() ? kNever : detections_.front().cycle;
}

}  // namespace dfc::fault
