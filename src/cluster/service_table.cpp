#include "cluster/service_table.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "multifpga/exec.hpp"
#include "multifpga/partition.hpp"
#include "serve/replica_pool.hpp"

namespace dfc::cluster {

namespace {

// Same convention as serve::ReplicaPool's warm(): timing is data-independent,
// so any seeded content works; seed 7 keeps the measurement reproducible.
std::vector<Tensor> timing_images(const dfc::core::NetworkSpec& spec, std::size_t count) {
  Rng rng(7);
  std::vector<Tensor> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Tensor t(spec.input_shape);
    for (float& v : t.flat()) v = rng.uniform(-1.0f, 1.0f);
    images.push_back(std::move(t));
  }
  return images;
}

}  // namespace

std::vector<std::uint64_t> measure_service_table(const dfc::core::NetworkSpec& spec,
                                                 std::size_t boards, std::size_t max_batch,
                                                 const dfc::core::InterLinkModel& link,
                                                 const dfc::core::BuildOptions& options) {
  DFC_REQUIRE(boards > 0, "a replica spans at least one board");
  DFC_REQUIRE(max_batch > 0, "service table needs a positive max batch size");
  link.validate();

  std::vector<std::uint64_t> table(max_batch, 0);
  if (boards == 1) {
    dfc::serve::ReplicaPool pool(spec, 1, options);
    for (std::size_t n = 1; n <= max_batch; ++n) table[n - 1] = pool.service_cycles(n);
    return table;
  }

  const mfpga::MultiFpgaPlan plan =
      mfpga::partition_network_exact(spec, boards, link.link, link.credits);
  dfc::core::BuildOptions opts = options;
  opts.link = link.link;
  mfpga::MultiFpgaHarness harness(
      mfpga::build_multi_fpga(spec, plan.layer_device, opts, link.credits));
  for (std::size_t n = 1; n <= max_batch; ++n) {
    const dfc::core::BatchResult res = harness.run_batch(timing_images(spec, n));
    DFC_CHECK(res.ok(), "multi-board service measurement did not complete (batch size " +
                            std::to_string(n) + "): " + res.error);
    table[n - 1] = res.total_cycles();
  }
  return table;
}

}  // namespace dfc::cluster
