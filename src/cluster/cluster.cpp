#include "cluster/cluster.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "core/harness.hpp"
#include "cluster/service_table.hpp"

namespace dfc::cluster {

namespace {

constexpr std::uint64_t kNever = dfc::serve::DynamicBatcher::kNever;
constexpr std::size_t kNoBatch = ~std::size_t{0};

enum class ReplicaState : std::uint8_t { kActive, kWarming, kDraining, kRetired };

struct ReplicaSlot {
  ReplicaState state = ReplicaState::kActive;
  std::uint64_t busy_until = 0;
  std::uint64_t ready_at = 0;          ///< kWarming: promotion cycle
  std::size_t batch = kNoBatch;        ///< in-flight batch id
  std::vector<std::uint64_t> riders;   ///< request ids of the in-flight batch
};

struct WireDelivery {
  std::uint64_t cycle = 0;  ///< arrival at the node (monotone per hop)
  std::uint64_t id = 0;
};

struct QueuedRequest {
  std::uint64_t id = 0;
  std::uint64_t queued_at = 0;  ///< delivery cycle — the batcher ages from here
};

struct NodeState {
  NodeState(NetHop ingress, NetHop egress) : in(std::move(ingress)), out(std::move(egress)) {}

  NetHop in;
  NetHop out;
  std::deque<WireDelivery> wire;    ///< routed, still in flight towards the node
  std::deque<QueuedRequest> queue;  ///< delivered, waiting for a batch
  std::vector<ReplicaSlot> replicas;

  std::uint64_t next_eval = kNever;
  std::uint64_t last_action = 0;
  bool acted = false;  ///< last_action is meaningful

  dfc::Gauge* depth_gauge = nullptr;
  dfc::Gauge* inflight_gauge = nullptr;
  dfc::Gauge* active_gauge = nullptr;
  dfc::Counter* routed_counter = nullptr;
  dfc::Counter* shed_counter = nullptr;

  // Scorecard accumulators.
  std::size_t routed = 0;
  std::size_t completed = 0;
  std::uint64_t shed_overflow = 0;
  std::uint64_t shed_deadline = 0;
  std::size_t batches = 0;
  std::uint64_t busy_cycles = 0;
  std::size_t peak_replicas = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;

  std::size_t active_count() const {
    std::size_t n = 0;
    for (const ReplicaSlot& r : replicas) n += r.state == ReplicaState::kActive ? 1 : 0;
    return n;
  }
  std::size_t usable_count() const {  ///< active + warming (provisioned capacity)
    std::size_t n = 0;
    for (const ReplicaSlot& r : replicas) {
      n += (r.state == ReplicaState::kActive || r.state == ReplicaState::kWarming) ? 1 : 0;
    }
    return n;
  }
};

/// Smooth weighted round-robin (deterministic, maximally interleaved): each
/// pick adds every node's weight to its current score, takes the highest
/// score (ties: lowest index), then subtracts the weight total from it.
class SmoothWrr {
 public:
  explicit SmoothWrr(const std::vector<NodeConfig>& nodes) : current_(nodes.size(), 0) {
    for (const NodeConfig& n : nodes) {
      weights_.push_back(static_cast<std::int64_t>(n.weight));
      total_ += static_cast<std::int64_t>(n.weight);
    }
  }

  std::size_t pick() {
    std::size_t best = 0;
    for (std::size_t i = 0; i < current_.size(); ++i) {
      current_[i] += weights_[i];
      if (current_[i] > current_[best]) best = i;
    }
    current_[best] -= total_;
    return best;
  }

 private:
  std::vector<std::int64_t> weights_;
  std::vector<std::int64_t> current_;
  std::int64_t total_ = 0;
};

}  // namespace

const char* route_policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kLeastLoaded: return "least-loaded";
    case RoutePolicy::kWeighted: return "weighted";
  }
  return "?";
}

std::vector<DeadlineClass> default_deadline_classes() {
  return {
      {"interactive", 25'000, 3},  // 250 us end-to-end SLO
      {"standard", 100'000, 5},    // 1 ms
      {"batch", 0, 2},             // best-effort
  };
}

void ClusterConfig::validate() const {
  DFC_REQUIRE(!nodes.empty(), "cluster needs at least one node");
  DFC_REQUIRE(batcher.max_batch_size > 0, "batcher max batch size must be positive");
  DFC_REQUIRE(request_words > 0 && response_words > 0, "payload word counts must be positive");
  for (const NodeConfig& n : nodes) {
    DFC_REQUIRE(n.replicas > 0, "every node needs at least one replica");
    DFC_REQUIRE(n.queue_capacity > 0, "node queue capacity must be positive");
    DFC_REQUIRE(n.weight > 0, "node weight must be positive");
    n.ingress.validate();
    n.egress.validate();
  }
  if (autoscaler.enabled) {
    DFC_REQUIRE(autoscaler.eval_interval_cycles > 0, "autoscaler eval interval must be positive");
    DFC_REQUIRE(autoscaler.scale_up_depth > autoscaler.scale_down_depth,
                "autoscaler hysteresis needs scale_up_depth > scale_down_depth");
    for (const NodeConfig& n : nodes) {
      DFC_REQUIRE(n.replicas <= autoscaler.max_replicas,
                  "node starts above the autoscaler replica ceiling");
    }
  }
  for (const DeadlineClass& c : classes) {
    DFC_REQUIRE(c.traffic_weight > 0, "deadline class traffic weight must be positive");
  }
  board_link.validate();
}

std::vector<std::size_t> assign_classes(std::size_t count,
                                        const std::vector<DeadlineClass>& classes,
                                        std::uint64_t seed) {
  std::vector<std::size_t> out(count, 0);
  if (classes.size() <= 1) return out;
  std::uint64_t total = 0;
  for (const DeadlineClass& c : classes) total += c.traffic_weight;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t draw = rng.next_below(total);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (draw < classes[c].traffic_weight) {
        out[i] = c;
        break;
      }
      draw -= classes[c].traffic_weight;
    }
  }
  return out;
}

ClusterReport plan_cluster(const std::vector<dfc::serve::Request>& requests,
                           const std::vector<std::size_t>& class_of,
                           const ClusterConfig& config,
                           const std::vector<std::vector<std::uint64_t>>& tables) {
  config.validate();
  DFC_REQUIRE(!requests.empty(), "plan_cluster needs at least one request");
  DFC_REQUIRE(class_of.size() == requests.size(), "class_of must cover every request");
  DFC_REQUIRE(tables.size() == config.nodes.size(), "one service table per node");
  const std::vector<DeadlineClass> classes =
      config.classes.empty() ? std::vector<DeadlineClass>{DeadlineClass{}} : config.classes;
  const std::size_t max_batch = config.batcher.max_batch_size;
  for (std::size_t node = 0; node < tables.size(); ++node) {
    DFC_REQUIRE(tables[node].size() >= max_batch,
                "node " + std::to_string(node) + " service table must cover the max batch size");
    for (std::size_t n = 0; n < max_batch; ++n) {
      DFC_REQUIRE(tables[node][n] > 0, "node " + std::to_string(node) +
                                           " service table entry for batch size " +
                                           std::to_string(n + 1) + " is unmeasured");
    }
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    DFC_REQUIRE(requests[i].id == i, "request ids must equal their index");
    DFC_REQUIRE(i == 0 || requests[i - 1].arrival_cycle <= requests[i].arrival_cycle,
                "requests must be sorted by arrival cycle");
    DFC_REQUIRE(class_of[i] < classes.size(), "request assigned to unknown deadline class");
  }

  // The gauges the least-loaded policy and the autoscaler read. An internal
  // registry backs them when the caller does not supply one; either way the
  // values are pure functions of the simulated timeline, hence deterministic.
  dfc::MetricsRegistry local_metrics;
  dfc::MetricsRegistry& metrics =
      config.metrics != nullptr ? *config.metrics : local_metrics;

  const dfc::serve::DynamicBatcher batcher(config.batcher);
  const std::uint64_t first_arrival = requests.front().arrival_cycle;

  std::vector<NodeState> nodes;
  nodes.reserve(config.nodes.size());
  for (std::size_t i = 0; i < config.nodes.size(); ++i) {
    const NodeConfig& nc = config.nodes[i];
    NodeState ns(NetHop("node" + std::to_string(i) + ".in", nc.ingress),
                 NetHop("node" + std::to_string(i) + ".out", nc.egress));
    ns.replicas.resize(nc.replicas);
    ns.peak_replicas = nc.replicas;
    if (config.autoscaler.enabled) {
      ns.next_eval = first_arrival + config.autoscaler.eval_interval_cycles;
    }
    const std::string prefix = "cluster_node" + std::to_string(i) + "_";
    ns.depth_gauge = &metrics.gauge(prefix + "queue_depth", "Requests queued on the node");
    ns.inflight_gauge = &metrics.gauge(
        prefix + "inflight", "Routed requests on the wire or in service (not queued)");
    ns.active_gauge = &metrics.gauge(prefix + "replicas_active", "Active replicas");
    ns.active_gauge->set(static_cast<double>(nc.replicas));
    ns.routed_counter = &metrics.counter(prefix + "routed_total", "Requests routed to the node");
    ns.shed_counter = &metrics.counter(prefix + "shed_total", "Requests shed by the node");
    nodes.push_back(std::move(ns));
  }

  ClusterReport report;
  report.outcomes.resize(requests.size());
  for (const dfc::serve::Request& r : requests) {
    report.outcomes[r.id].id = r.id;
    report.outcomes[r.id].deadline_class = class_of[r.id];
    report.outcomes[r.id].arrival_cycle = r.arrival_cycle;
  }

  std::size_t rr_next = 0;
  SmoothWrr wrr(config.nodes);
  auto route = [&]() -> std::size_t {
    switch (config.policy) {
      case RoutePolicy::kRoundRobin: {
        const std::size_t n = rr_next;
        rr_next = (rr_next + 1) % nodes.size();
        return n;
      }
      case RoutePolicy::kLeastLoaded: {
        // Queue depth plus wire/service in-flight = everything already
        // committed to the node; read through the gauges, not the planner
        // state, so any external controller sees the same signal.
        std::size_t best = 0;
        double best_score = 0.0;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          const double score =
              nodes[i].depth_gauge->value() + nodes[i].inflight_gauge->value();
          if (i == 0 || score < best_score) {
            best = i;
            best_score = score;
          }
        }
        return best;
      }
      case RoutePolicy::kWeighted: return wrr.pick();
    }
    return 0;
  };

  std::size_t batch_counter = 0;
  std::size_t next_arrival = 0;
  std::uint64_t now = first_arrival;
  std::uint64_t last_response = first_arrival;

  // 1. Finalize batches whose service interval ended: each rider's response
  // takes the egress hop home (one serialized transfer per response, rider
  // id order); draining replicas retire once their last batch lands.
  auto finalize_completions = [&](NodeState& ns) {
    for (ReplicaSlot& slot : ns.replicas) {
      if (slot.batch == kNoBatch || slot.busy_until > now) continue;
      for (const std::uint64_t id : slot.riders) {
        ClusterOutcome& o = report.outcomes[id];
        o.response_cycle = ns.out.transfer(now, config.response_words);
        last_response = std::max(last_response, o.response_cycle);
        ++ns.completed;
      }
      ns.inflight_gauge->add(-static_cast<double>(slot.riders.size()));
      slot.riders.clear();
      slot.batch = kNoBatch;
      if (slot.state == ReplicaState::kDraining) slot.state = ReplicaState::kRetired;
    }
  };

  auto record_scale = [&](std::size_t node, int delta) {
    NodeState& ns = nodes[node];
    report.scale_events.push_back(ScaleEvent{now, node, delta, ns.usable_count()});
    ns.last_action = now;
    ns.acted = true;
    ns.peak_replicas = std::max(ns.peak_replicas, ns.usable_count());
    ns.active_gauge->set(static_cast<double>(ns.active_count()));
  };

  // 2. Promote warmed replicas, then run due autoscaler evaluations. The
  // scale-up test counts warming replicas as capacity and a cooldown gates
  // consecutive actions — together the hysteresis that keeps a load step
  // from triggering a thrash train.
  auto autoscale = [&](std::size_t node) {
    NodeState& ns = nodes[node];
    for (ReplicaSlot& slot : ns.replicas) {
      if (slot.state == ReplicaState::kWarming && slot.ready_at <= now) {
        slot.state = ReplicaState::kActive;
        ns.active_gauge->set(static_cast<double>(ns.active_count()));
      }
    }
    if (!config.autoscaler.enabled || ns.next_eval > now) return;
    while (ns.next_eval <= now) ns.next_eval += config.autoscaler.eval_interval_cycles;
    if (ns.acted && now - ns.last_action < config.autoscaler.cooldown_cycles) return;

    const double depth = static_cast<double>(ns.queue.size());
    const std::size_t active = ns.active_count();
    const std::size_t usable = ns.usable_count();
    if (depth > config.autoscaler.scale_up_depth * static_cast<double>(usable) &&
        usable < config.autoscaler.max_replicas) {
      ReplicaSlot slot;
      slot.state = ReplicaState::kWarming;
      slot.ready_at = now + config.autoscaler.warmup_cycles;
      ns.replicas.push_back(std::move(slot));
      ++ns.scale_ups;
      record_scale(node, +1);
    } else if (depth < config.autoscaler.scale_down_depth * static_cast<double>(active) &&
               active == usable && active > config.nodes[node].replicas) {
      // Drain the highest-index active replica: no new batches; it retires
      // when the in-flight one lands (immediately when idle).
      for (std::size_t r = ns.replicas.size(); r-- > 0;) {
        ReplicaSlot& slot = ns.replicas[r];
        if (slot.state != ReplicaState::kActive) continue;
        slot.state = slot.batch == kNoBatch ? ReplicaState::kRetired : ReplicaState::kDraining;
        break;
      }
      ++ns.scale_downs;
      record_scale(node, -1);
    }
  };

  // 4. Deliveries off the ingress wire: admission runs where the queue
  // lives. Queue overflow sheds first; then the SLO check predicts this
  // request's completion from the node's current backlog and sheds it if the
  // prediction misses its class deadline — so under overload the tightest
  // class sheds first (its deadline busts at the smallest backlog).
  auto deliver_due = [&](std::size_t node) {
    NodeState& ns = nodes[node];
    const std::vector<std::uint64_t>& table = tables[node];
    while (!ns.wire.empty() && ns.wire.front().cycle <= now) {
      const WireDelivery d = ns.wire.front();
      ns.wire.pop_front();
      ClusterOutcome& o = report.outcomes[d.id];
      o.delivery_cycle = d.cycle;
      if (ns.queue.size() >= config.nodes[node].queue_capacity) {
        o.shed = ClusterOutcome::Shed::kOverflow;
        ++ns.shed_overflow;
        ns.shed_counter->inc();
        ns.inflight_gauge->add(-1.0);
        continue;
      }
      const DeadlineClass& cls = classes[o.deadline_class];
      if (cls.deadline_cycles > 0) {
        const std::size_t active = std::max<std::size_t>(ns.active_count(), 1);
        double backlog = 0.0;
        for (const ReplicaSlot& slot : ns.replicas) {
          if (slot.state == ReplicaState::kActive && slot.busy_until > now) {
            backlog += static_cast<double>(slot.busy_until - now);
          }
        }
        // Queued work amortizes at the max-batch per-request rate; this
        // request then pays one full service interval and the trip home.
        backlog += static_cast<double>(ns.queue.size()) *
                   (static_cast<double>(table[max_batch - 1]) / static_cast<double>(max_batch));
        const double est_completion =
            static_cast<double>(now) + backlog / static_cast<double>(active) +
            static_cast<double>(table[0]) +
            static_cast<double>(config.response_words * ns.out.model().effective_cycles_per_word() +
                                static_cast<std::uint64_t>(ns.out.model().link.link.latency_cycles));
        if (est_completion > static_cast<double>(o.arrival_cycle + cls.deadline_cycles)) {
          o.shed = ClusterOutcome::Shed::kDeadline;
          ++ns.shed_deadline;
          ns.shed_counter->inc();
          ns.inflight_gauge->add(-1.0);
          continue;
        }
      }
      ns.queue.push_back(QueuedRequest{d.id, d.cycle});
      ns.depth_gauge->add(1.0);
      ns.inflight_gauge->add(-1.0);
    }
  };

  // 5. Close ready batches onto free active replicas, lowest index first
  // (serve's dispatch rule, per node).
  auto dispatch_ready = [&](std::size_t node) {
    NodeState& ns = nodes[node];
    const std::vector<std::uint64_t>& table = tables[node];
    while (!ns.queue.empty()) {
      std::size_t free = ns.replicas.size();
      for (std::size_t r = 0; r < ns.replicas.size(); ++r) {
        if (ns.replicas[r].state == ReplicaState::kActive && ns.replicas[r].batch == kNoBatch) {
          free = r;
          break;
        }
      }
      if (free == ns.replicas.size()) return;
      if (!batcher.should_close(ns.queue.size(), ns.queue.front().queued_at, now)) return;

      const std::size_t k = batcher.take_count(ns.queue.size());
      ReplicaSlot& slot = ns.replicas[free];
      slot.batch = batch_counter++;
      slot.busy_until = now + table[k - 1];
      slot.riders.reserve(k);
      for (std::size_t j = 0; j < k; ++j) {
        const QueuedRequest q = ns.queue.front();
        ns.queue.pop_front();
        slot.riders.push_back(q.id);
        ClusterOutcome& o = report.outcomes[q.id];
        o.dispatch_cycle = now;
        o.completion_cycle = slot.busy_until;
        o.replica = free;
        o.batch_id = slot.batch;
      }
      ns.depth_gauge->add(-static_cast<double>(k));
      ns.inflight_gauge->add(static_cast<double>(k));
      ++ns.batches;
      ns.busy_cycles += table[k - 1];
    }
  };

  auto work_pending = [&] {
    if (next_arrival < requests.size()) return true;
    for (const NodeState& ns : nodes) {
      if (!ns.wire.empty() || !ns.queue.empty()) return true;
      for (const ReplicaSlot& slot : ns.replicas) {
        if (slot.batch != kNoBatch) return true;
      }
    }
    return false;
  };

  while (work_pending()) {
    std::uint64_t t = kNever;
    if (next_arrival < requests.size()) t = std::min(t, requests[next_arrival].arrival_cycle);
    for (const NodeState& ns : nodes) {
      if (!ns.wire.empty()) t = std::min(t, ns.wire.front().cycle);
      bool has_free_active = false;
      for (const ReplicaSlot& slot : ns.replicas) {
        if (slot.batch != kNoBatch) t = std::min(t, slot.busy_until);
        if (slot.state == ReplicaState::kWarming) t = std::min(t, slot.ready_at);
        if (slot.state == ReplicaState::kActive && slot.batch == kNoBatch) {
          has_free_active = true;
        }
      }
      if (!ns.queue.empty() && has_free_active) {
        t = std::min(t, batcher.close_deadline(ns.queue.front().queued_at));
      }
      if (config.autoscaler.enabled) t = std::min(t, ns.next_eval);
    }
    DFC_CHECK(t != kNever && t >= now, "cluster event loop lost its next event");
    now = t;

    // Fixed per-cycle order (see the header comment): completions free
    // replicas and retire drains, the autoscaler sees post-completion state,
    // arrivals route on this cycle's gauges, deliveries run admission, and
    // dispatch fills whatever capacity remains.
    for (NodeState& ns : nodes) finalize_completions(ns);
    for (std::size_t i = 0; i < nodes.size(); ++i) autoscale(i);
    while (next_arrival < requests.size() && requests[next_arrival].arrival_cycle == now) {
      const dfc::serve::Request& r = requests[next_arrival];
      const std::size_t node = route();
      NodeState& ns = nodes[node];
      report.outcomes[r.id].node = node;
      ++ns.routed;
      ns.routed_counter->inc();
      ns.inflight_gauge->add(1.0);
      ns.wire.push_back(WireDelivery{ns.in.transfer(now, config.request_words), r.id});
      ++next_arrival;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) deliver_due(i);
    for (std::size_t i = 0; i < nodes.size(); ++i) dispatch_ready(i);
  }

  // ---- Scorecard -----------------------------------------------------------
  ClusterStats& stats = report.stats;
  stats.policy = route_policy_name(config.policy);
  stats.offered_requests = requests.size();
  stats.makespan_cycles = last_response - first_arrival;
  stats.scale_events = report.scale_events.size();

  std::vector<std::uint64_t> all_latencies;
  all_latencies.reserve(requests.size());
  std::vector<std::vector<std::uint64_t>> class_latencies(classes.size());
  std::vector<double> class_latency_sums(classes.size(), 0.0);
  stats.classes.resize(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    stats.classes[c].name = classes[c].name;
    stats.classes[c].deadline_cycles = classes[c].deadline_cycles;
  }
  for (const ClusterOutcome& o : report.outcomes) {
    ClassStats& cs = stats.classes[o.deadline_class];
    ++cs.offered;
    if (o.shed == ClusterOutcome::Shed::kOverflow) {
      ++cs.shed_overflow;
      ++stats.shed_overflow;
      continue;
    }
    if (o.shed == ClusterOutcome::Shed::kDeadline) {
      ++cs.shed_deadline;
      ++stats.shed_deadline;
      continue;
    }
    ++stats.completed_requests;
    ++cs.completed;
    const std::uint64_t lat = o.latency_cycles();
    all_latencies.push_back(lat);
    class_latencies[o.deadline_class].push_back(lat);
    class_latency_sums[o.deadline_class] += static_cast<double>(lat);
    if (cs.deadline_cycles > 0 && lat > cs.deadline_cycles) ++cs.deadline_misses;
  }
  for (std::size_t c = 0; c < classes.size(); ++c) {
    ClassStats& cs = stats.classes[c];
    const LatencyPercentiles lp = latency_percentiles(class_latencies[c]);
    cs.p50_latency_cycles = lp.p50;
    cs.p95_latency_cycles = lp.p95;
    cs.p99_latency_cycles = lp.p99;
    cs.p999_latency_cycles = lp.p999;
    cs.mean_latency_cycles =
        cs.completed > 0 ? class_latency_sums[c] / static_cast<double>(cs.completed) : 0.0;
  }
  const LatencyPercentiles lp = latency_percentiles(std::move(all_latencies));
  stats.p50_latency_cycles = lp.p50;
  stats.p99_latency_cycles = lp.p99;
  stats.p999_latency_cycles = lp.p999;

  const std::uint64_t last_arrival = requests.back().arrival_cycle;
  const double arrival_span =
      static_cast<double>(std::max<std::uint64_t>(last_arrival - first_arrival, 1));
  const double total_span = static_cast<double>(std::max<std::uint64_t>(stats.makespan_cycles, 1));
  stats.offered_rps =
      static_cast<double>(stats.offered_requests) / dfc::core::cycles_to_seconds(arrival_span);
  stats.sustained_rps =
      static_cast<double>(stats.completed_requests) / dfc::core::cycles_to_seconds(total_span);

  stats.node_stats.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    NodeState& ns = nodes[i];
    NodeStats& out = stats.node_stats[i];
    out.node = i;
    out.boards = config.nodes[i].boards;
    out.routed = ns.routed;
    out.completed = ns.completed;
    out.shed_overflow = ns.shed_overflow;
    out.shed_deadline = ns.shed_deadline;
    out.batches = ns.batches;
    out.replicas_start = config.nodes[i].replicas;
    out.replicas_peak = ns.peak_replicas;
    out.replicas_final = ns.usable_count();
    out.scale_ups = ns.scale_ups;
    out.scale_downs = ns.scale_downs;
    out.busy_cycles = ns.busy_cycles;
    out.utilization =
        static_cast<double>(ns.busy_cycles) /
        (total_span * static_cast<double>(std::max<std::size_t>(ns.peak_replicas, 1)));
    // Attribution window: [first_arrival, last_response]. Every hop's
    // serializer finished by last_response (a response lands latency cycles
    // after its serialization ends), so the buckets sum exactly.
    out.ingress.name = ns.in.name();
    out.ingress.words = ns.in.words_transferred();
    out.ingress.activity = ns.in.activity(last_response);
    out.ingress.activity.idle -= first_arrival;  // window starts at first arrival
    out.egress.name = ns.out.name();
    out.egress.words = ns.out.words_transferred();
    out.egress.activity = ns.out.activity(last_response);
    out.egress.activity.idle -= first_arrival;
  }
  return report;
}

Cluster::Cluster(const dfc::core::NetworkSpec& spec, const ClusterConfig& config)
    : spec_(spec), config_(config) {
  config_.validate();
  // One measured table per distinct boards value; nodes with the same board
  // count share the measurement (replicas are identical by construction).
  std::map<std::size_t, std::vector<std::uint64_t>> by_boards;
  for (const NodeConfig& n : config_.nodes) {
    if (by_boards.find(n.boards) == by_boards.end()) {
      by_boards[n.boards] = measure_service_table(
          spec_, n.boards, config_.batcher.max_batch_size, config_.board_link, config_.build);
    }
  }
  tables_.reserve(config_.nodes.size());
  for (const NodeConfig& n : config_.nodes) tables_.push_back(by_boards[n.boards]);
}

ClusterReport Cluster::run(const dfc::serve::Load& load, const std::string& scenario_name,
                           const std::string& shape_name) {
  const std::vector<std::size_t> class_of =
      assign_classes(load.requests.size(), config_.classes, config_.class_seed);
  ClusterReport report = plan_cluster(load.requests, class_of, config_, tables_);
  report.stats.name = scenario_name;
  report.stats.design = spec_.name;
  report.stats.shape = shape_name;
  return report;
}

}  // namespace dfc::cluster
