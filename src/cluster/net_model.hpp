// Deterministic network-hop model for the simulated cluster fabric.
//
// The cluster front end does not run flit-level InterLinkWire objects per
// request — at millions of requests per second that would itself become the
// simulation bottleneck — but every hop is priced with the SAME timing law
// the flit-level interlink obeys (core/interlink, mirrored analytically by
// mfpga::estimate_multi_timing):
//
//   * serialization: one word per link.cycles_per_word cycles;
//   * credit flow control: at most `credits` unacknowledged words, so the
//     sustained rate degrades to one word per
//     max(cycles_per_word, ceil(2*latency/credits)) cycles — exactly the
//     credit law the wire-level executor measures (DESIGN.md §11);
//   * traversal: latency_cycles of flight after serialization completes.
//
// Transfers queue FIFO on the hop: a request cannot start serializing while
// an earlier one still owns the serializer, which is what creates network
// queueing (and therefore network-visible tail latency) under bursts.
//
// Attribution reuses obs::LinkActivity, the inter-board links' bucket type:
// every cycle of the observation window lands in exactly one of wire_busy
// (the serializer moved a word), credit_stall (the credit window — not the
// serializer — withheld the word) or idle, so cluster network hops are
// attributable in reports the same way inter-board link cycles already are.
// Flight (latency) cycles overlap serialization of later words and appear
// in request latency, not in hop occupancy.
#pragma once

#include <cstdint>
#include <string>

#include "common/math_util.hpp"
#include "core/interlink.hpp"
#include "obs/activity.hpp"

namespace dfc::cluster {

/// Timing of one directed network hop (front end -> node or node -> front
/// end), expressed with the interlink's own model so bandwidth, latency and
/// the credit window mean the same thing they mean for inter-board links.
struct HopModel {
  dfc::core::InterLinkModel link{};

  std::uint64_t cycles_per_word() const {
    return static_cast<std::uint64_t>(link.link.cycles_per_word);
  }

  /// Sustained serialization cost per word under credit flow control:
  /// max(cycles_per_word, ceil(2*latency/credits)) — estimate_multi_timing's
  /// credit law. With auto-sized credits (0) the window never throttles and
  /// this equals cycles_per_word.
  std::uint64_t effective_cycles_per_word() const {
    const auto round_trip = static_cast<std::int64_t>(2 * link.link.latency_cycles);
    return std::max<std::uint64_t>(
        cycles_per_word(),
        static_cast<std::uint64_t>(dfc::ceil_div(round_trip, link.effective_credits())));
  }

  void validate() const { link.validate(); }
};

/// One directed hop with FIFO serializer occupancy and LinkActivity
/// attribution. Transfers must be scheduled in non-decreasing `ready` order
/// (the cluster event loop processes events in time order, so this holds by
/// construction and is asserted).
class NetHop {
 public:
  NetHop(std::string name, HopModel model);

  const std::string& name() const { return name_; }
  const HopModel& model() const { return model_; }

  /// Schedules a transfer of `words` that is ready to enter the hop at cycle
  /// `ready`; returns the delivery cycle at the far end. Serialization
  /// starts at max(ready, serializer-free) — FIFO occupancy.
  std::uint64_t transfer(std::uint64_t ready, std::uint64_t words);

  std::uint64_t words_transferred() const { return words_; }
  /// Cycle the serializer frees up after everything scheduled so far.
  std::uint64_t busy_until() const { return busy_until_; }

  /// Attribution over an observation window of `horizon` cycles (which must
  /// cover busy_until()): wire_busy + credit_stall + idle == horizon, the
  /// same exactness contract the inter-board LinkTracker keeps.
  dfc::obs::LinkActivity activity(std::uint64_t horizon) const;

 private:
  std::string name_;
  HopModel model_;
  std::uint64_t busy_until_ = 0;
  std::uint64_t last_ready_ = 0;
  std::uint64_t words_ = 0;
  std::uint64_t wire_cycles_ = 0;    ///< words * cycles_per_word
  std::uint64_t credit_cycles_ = 0;  ///< words * (effective - cycles_per_word)
};

}  // namespace dfc::cluster
