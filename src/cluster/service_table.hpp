// Measured service-time tables for single- and multi-board replicas.
//
// The serve planner consumes a table mapping batch size -> cycles (entry n-1
// = cycles of a size-n back-to-back batch), measured on the cycle engine.
// Until now that table always came from a single-device ReplicaPool, so a
// replica that is really a multi-board pipeline (src/multifpga) was planned
// with single-board timings — the "PR 7 -> serve gap" named in ROADMAP.
//
// measure_service_table closes it: for boards > 1 the design is partitioned
// with partition_network_exact (contiguous split, best predicted interval)
// and each batch size is measured on a lockstep MultiFpgaHarness, so the
// interlink's bandwidth, latency and credit window land in the planner's
// per-image service times exactly as the wire-level executor charges them.
// The measurement is bit-deterministic (lockstep multi-context execution,
// DESIGN.md §11), so planner timelines built on these tables stay
// byte-identical across hosts and DFCNN_SWEEP_THREADS.
#pragma once

#include <cstdint>
#include <vector>

#include "core/builder.hpp"
#include "core/interlink.hpp"
#include "core/network_spec.hpp"

namespace dfc::cluster {

/// Measures cycles for back-to-back batches of size 1..max_batch on a
/// replica of `spec` spanning `boards` devices (1 = single-device, measured
/// via a ReplicaPool harness; >1 = contiguous partition over `boards` boards
/// joined by `link`-timed credit-based interlinks). Throws ConfigError when
/// boards exceeds the layer count and SimError if a batch fails to complete.
std::vector<std::uint64_t> measure_service_table(
    const dfc::core::NetworkSpec& spec, std::size_t boards, std::size_t max_batch,
    const dfc::core::InterLinkModel& link = {},
    const dfc::core::BuildOptions& options = {});

}  // namespace dfc::cluster
