#include "cluster/net_model.hpp"

#include <utility>

#include "common/error.hpp"

namespace dfc::cluster {

NetHop::NetHop(std::string name, HopModel model) : name_(std::move(name)), model_(model) {
  model_.validate();
}

std::uint64_t NetHop::transfer(std::uint64_t ready, std::uint64_t words) {
  DFC_REQUIRE(words > 0, "network transfer needs at least one word");
  DFC_REQUIRE(ready >= last_ready_, "network transfers must be scheduled in time order");
  last_ready_ = ready;

  const std::uint64_t cpw = model_.cycles_per_word();
  const std::uint64_t eff = model_.effective_cycles_per_word();
  const std::uint64_t start = std::max(ready, busy_until_);
  // The first word of a transfer always moves at the raw serializer rate
  // (credits regenerate while the hop sits idle); sustained back-to-back
  // words pay the credit-throttled effective rate.
  const std::uint64_t occupancy = cpw + (words - 1) * eff;
  busy_until_ = start + occupancy;
  words_ += words;
  wire_cycles_ += words * cpw;
  credit_cycles_ += occupancy - words * cpw;
  return busy_until_ + static_cast<std::uint64_t>(model_.link.link.latency_cycles);
}

dfc::obs::LinkActivity NetHop::activity(std::uint64_t horizon) const {
  DFC_REQUIRE(horizon >= busy_until_, "activity horizon must cover all transfers");
  dfc::obs::LinkActivity a;
  a.wire_busy = wire_cycles_;
  a.credit_stall = credit_cycles_;
  a.rx_backpressure = 0;  // the front end / node ingress always drains
  a.idle = horizon - a.wire_busy - a.credit_stall;
  DFC_REQUIRE(a.total() == horizon, "hop activity buckets must sum to the horizon");
  return a;
}

}  // namespace dfc::cluster
