// Result types of a cluster run: per-request outcomes, autoscaler events,
// per-node and per-deadline-class scorecards, and the aggregate ClusterStats
// with ASCII / JSON / CSV renderers.
//
// Everything here is computed from the simulated timeline's integers only
// (doubles are printed at fixed precision from those integers), so the
// rendered table, the JSON report and the per-request CSV are byte-identical
// across machines and DFCNN_SWEEP_THREADS settings — the same contract every
// prior report type in this repo keeps, and what lets CI gate on exact
// sustained-rate and shed counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/activity.hpp"

namespace dfc::cluster {

/// What happened to one request at cluster scope. All cycles are simulated
/// fabric cycles; a shed request only has its arrival/delivery times.
struct ClusterOutcome {
  std::uint64_t id = 0;
  std::size_t deadline_class = 0;  ///< index into ClusterStats::classes
  std::size_t node = 0;            ///< routing decision (valid even when shed)

  std::uint64_t arrival_cycle = 0;     ///< at the front-end load balancer
  std::uint64_t delivery_cycle = 0;    ///< after the ingress network hop
  std::uint64_t dispatch_cycle = 0;    ///< batch close on the node
  std::uint64_t completion_cycle = 0;  ///< replica finished the batch
  std::uint64_t response_cycle = 0;    ///< after the egress hop back

  enum class Shed : std::uint8_t { kNone = 0, kOverflow = 1, kDeadline = 2 };
  Shed shed = Shed::kNone;

  std::size_t replica = 0;
  std::size_t batch_id = 0;

  /// End-to-end latency including both network hops (valid when not shed).
  std::uint64_t latency_cycles() const { return response_cycle - arrival_cycle; }
};

/// One autoscaler action: delta is +1 (spin up a replica, ready after the
/// warm-up) or -1 (drain the highest-index active replica).
struct ScaleEvent {
  std::uint64_t cycle = 0;
  std::size_t node = 0;
  int delta = 0;
  std::size_t replicas_after = 0;  ///< active + warming replicas post-action
};

/// Per-deadline-class scorecard. Classes are ordered as configured
/// (conventionally tightest deadline first).
struct ClassStats {
  std::string name;
  std::uint64_t deadline_cycles = 0;  ///< 0 = best-effort (no SLO)

  std::size_t offered = 0;
  std::size_t completed = 0;
  std::uint64_t shed_overflow = 0;  ///< node queue full
  std::uint64_t shed_deadline = 0;  ///< admission predicted an SLO miss

  std::uint64_t p50_latency_cycles = 0;
  std::uint64_t p95_latency_cycles = 0;
  std::uint64_t p99_latency_cycles = 0;
  std::uint64_t p999_latency_cycles = 0;
  double mean_latency_cycles = 0.0;

  /// Completed requests whose end-to-end latency still exceeded the class
  /// deadline (admission is an estimate, not a guarantee).
  std::size_t deadline_misses = 0;
};

/// One directed network hop's transfer volume and cycle attribution
/// (wire_busy + credit_stall + idle == makespan; see net_model.hpp).
struct HopStats {
  std::string name;
  std::uint64_t words = 0;
  dfc::obs::LinkActivity activity{};
};

/// Per-node scorecard.
struct NodeStats {
  std::size_t node = 0;
  std::size_t boards = 1;  ///< devices per replica (>1 = multi-board pipeline)

  std::size_t routed = 0;  ///< requests the balancer sent this way
  std::size_t completed = 0;
  std::uint64_t shed_overflow = 0;
  std::uint64_t shed_deadline = 0;
  std::size_t batches = 0;

  std::size_t replicas_start = 0;
  std::size_t replicas_peak = 0;
  std::size_t replicas_final = 0;
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;

  std::uint64_t busy_cycles = 0;  ///< summed replica service cycles
  /// busy_cycles / (makespan * replicas_peak): fleet-level utilization of the
  /// node's peak provisioned capacity.
  double utilization = 0.0;

  HopStats ingress;  ///< front end -> node
  HopStats egress;   ///< node -> front end
};

/// Aggregate scorecard of a cluster scenario.
struct ClusterStats {
  std::string name;    ///< scenario label (e.g. "diurnal")
  std::string design;  ///< network design name
  std::string policy;  ///< routing policy name
  std::string shape;   ///< arrival process name

  std::size_t offered_requests = 0;
  std::size_t completed_requests = 0;
  std::uint64_t shed_overflow = 0;
  std::uint64_t shed_deadline = 0;

  double offered_rps = 0.0;    ///< requests/s over the arrival span (100 MHz)
  double sustained_rps = 0.0;  ///< completions/s, first arrival -> last response

  std::uint64_t p50_latency_cycles = 0;
  std::uint64_t p99_latency_cycles = 0;
  std::uint64_t p999_latency_cycles = 0;

  std::uint64_t makespan_cycles = 0;  ///< first arrival -> last response
  std::size_t scale_events = 0;

  std::vector<ClassStats> classes;
  std::vector<NodeStats> node_stats;

  /// ASCII tables for the CLI: cluster summary, per-class SLO table,
  /// per-node table with hop attribution.
  std::string render() const;

  /// One-line human verdict, e.g.
  /// "sustained 2.41 Mreq/s across 4 nodes; interactive p99 21.3 us; shed 1.2% (deadline 0.9%)".
  std::string verdict() const;

  /// Deterministic JSON object (integers exact, doubles at fixed precision)
  /// — the payload CI gates on and `dfcnn cluster --out` writes.
  std::string to_json() const;
};

/// Everything a cluster run produces. Outcomes are indexed by request id.
struct ClusterReport {
  ClusterStats stats;
  std::vector<ClusterOutcome> outcomes;
  std::vector<ScaleEvent> scale_events;

  /// Per-request CSV (header + one row per request, id order) — the
  /// byte-identity artifact the determinism tests hash.
  std::string csv() const;
};

}  // namespace dfc::cluster
