#include "cluster/cluster_stats.hpp"

#include <sstream>

#include "common/table.hpp"
#include "core/harness.hpp"

namespace dfc::cluster {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

double pct(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(total);
}

}  // namespace

std::string ClusterStats::render() const {
  auto us = [](std::uint64_t cycles) {
    return dfc::core::cycles_to_us(static_cast<double>(cycles));
  };
  std::ostringstream os;

  AsciiTable t({"metric", "value"});
  t.add_row({"design", design});
  t.add_row({"nodes", std::to_string(node_stats.size())});
  t.add_row({"policy", policy});
  t.add_row({"shape", shape});
  t.add_row({"offered requests", std::to_string(offered_requests)});
  t.add_row({"completed", std::to_string(completed_requests)});
  t.add_row({"shed (queue full)", std::to_string(shed_overflow)});
  t.add_row({"shed (deadline)", std::to_string(shed_deadline)});
  t.add_row({"offered rate (req/s)", fmt_fixed(offered_rps, 0)});
  t.add_row({"sustained rate (req/s)", fmt_fixed(sustained_rps, 0)});
  t.add_row({"p50 latency (us)", fmt_fixed(us(p50_latency_cycles), 3)});
  t.add_row({"p99 latency (us)", fmt_fixed(us(p99_latency_cycles), 3)});
  t.add_row({"p99.9 latency (us)", fmt_fixed(us(p999_latency_cycles), 3)});
  t.add_row({"makespan (cycles)", std::to_string(makespan_cycles)});
  t.add_row({"scale events", std::to_string(scale_events)});
  os << t.render();

  if (!classes.empty()) {
    os << "\nper-class SLO:\n";
    AsciiTable c({"class", "deadline_us", "offered", "completed", "shed_q", "shed_slo", "p50_us",
                  "p99_us", "p99.9_us", "miss"});
    for (const auto& cl : classes) {
      c.add_row({cl.name,
                 cl.deadline_cycles == 0 ? "-" : fmt_fixed(us(cl.deadline_cycles), 1),
                 std::to_string(cl.offered), std::to_string(cl.completed),
                 std::to_string(cl.shed_overflow), std::to_string(cl.shed_deadline),
                 fmt_fixed(us(cl.p50_latency_cycles), 1), fmt_fixed(us(cl.p99_latency_cycles), 1),
                 fmt_fixed(us(cl.p999_latency_cycles), 1), std::to_string(cl.deadline_misses)});
    }
    os << c.render();
  }

  os << "\nper-node (hop cycles attributed as wire/credit/idle % of makespan):\n";
  AsciiTable n({"node", "boards", "replicas", "routed", "completed", "shed", "util%", "in_wire%",
                "in_credit%", "out_wire%", "out_idle%"});
  for (const auto& ns : node_stats) {
    const std::uint64_t total_in = ns.ingress.activity.total();
    const std::uint64_t total_out = ns.egress.activity.total();
    n.add_row({std::to_string(ns.node), std::to_string(ns.boards),
               std::to_string(ns.replicas_start) + "->" + std::to_string(ns.replicas_peak) + "->" +
                   std::to_string(ns.replicas_final),
               std::to_string(ns.routed), std::to_string(ns.completed),
               std::to_string(ns.shed_overflow + ns.shed_deadline),
               fmt_fixed(100.0 * ns.utilization, 1),
               fmt_fixed(pct(ns.ingress.activity.wire_busy, total_in), 1),
               fmt_fixed(pct(ns.ingress.activity.credit_stall, total_in), 1),
               fmt_fixed(pct(ns.egress.activity.wire_busy, total_out), 1),
               fmt_fixed(pct(ns.egress.activity.idle, total_out), 1)});
  }
  os << n.render();
  return os.str();
}

std::string ClusterStats::verdict() const {
  std::ostringstream os;
  os << "sustained " << fmt_fixed(sustained_rps / 1e6, 2) << " Mreq/s across "
     << node_stats.size() << " nodes";
  if (!classes.empty()) {
    os << "; " << classes.front().name << " p99 "
       << fmt_fixed(dfc::core::cycles_to_us(static_cast<double>(classes.front().p99_latency_cycles)), 1)
       << " us";
  }
  const std::uint64_t shed = shed_overflow + shed_deadline;
  os << "; shed " << fmt_fixed(pct(shed, offered_requests), 1) << "% (deadline "
     << fmt_fixed(pct(shed_deadline, offered_requests), 1) << "%)";
  return os.str();
}

std::string ClusterStats::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": \"" << json_escape(name) << "\",\n";
  os << "  \"design\": \"" << json_escape(design) << "\",\n";
  os << "  \"policy\": \"" << json_escape(policy) << "\",\n";
  os << "  \"shape\": \"" << json_escape(shape) << "\",\n";
  os << "  \"nodes\": " << node_stats.size() << ",\n";
  os << "  \"offered_requests\": " << offered_requests << ",\n";
  os << "  \"completed_requests\": " << completed_requests << ",\n";
  os << "  \"shed_overflow\": " << shed_overflow << ",\n";
  os << "  \"shed_deadline\": " << shed_deadline << ",\n";
  os << "  \"offered_rps\": " << fmt_fixed(offered_rps, 1) << ",\n";
  os << "  \"sustained_rps\": " << fmt_fixed(sustained_rps, 1) << ",\n";
  os << "  \"p50_latency_cycles\": " << p50_latency_cycles << ",\n";
  os << "  \"p99_latency_cycles\": " << p99_latency_cycles << ",\n";
  os << "  \"p999_latency_cycles\": " << p999_latency_cycles << ",\n";
  os << "  \"makespan_cycles\": " << makespan_cycles << ",\n";
  os << "  \"scale_events\": " << scale_events << ",\n";
  os << "  \"classes\": [\n";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& c = classes[i];
    os << "    {\"name\": \"" << json_escape(c.name) << "\", \"deadline_cycles\": "
       << c.deadline_cycles << ", \"offered\": " << c.offered << ", \"completed\": " << c.completed
       << ", \"shed_overflow\": " << c.shed_overflow << ", \"shed_deadline\": " << c.shed_deadline
       << ", \"p50_latency_cycles\": " << c.p50_latency_cycles
       << ", \"p99_latency_cycles\": " << c.p99_latency_cycles
       << ", \"p999_latency_cycles\": " << c.p999_latency_cycles
       << ", \"mean_latency_cycles\": " << fmt_fixed(c.mean_latency_cycles, 1)
       << ", \"deadline_misses\": " << c.deadline_misses << "}"
       << (i + 1 < classes.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"node_stats\": [\n";
  for (std::size_t i = 0; i < node_stats.size(); ++i) {
    const auto& n = node_stats[i];
    auto hop = [](const HopStats& h) {
      std::ostringstream hs;
      hs << "{\"name\": \"" << json_escape(h.name) << "\", \"words\": " << h.words
         << ", \"wire_busy\": " << h.activity.wire_busy
         << ", \"credit_stall\": " << h.activity.credit_stall
         << ", \"rx_backpressure\": " << h.activity.rx_backpressure
         << ", \"idle\": " << h.activity.idle << "}";
      return hs.str();
    };
    os << "    {\"node\": " << n.node << ", \"boards\": " << n.boards
       << ", \"routed\": " << n.routed << ", \"completed\": " << n.completed
       << ", \"shed_overflow\": " << n.shed_overflow << ", \"shed_deadline\": " << n.shed_deadline
       << ", \"batches\": " << n.batches << ", \"replicas_start\": " << n.replicas_start
       << ", \"replicas_peak\": " << n.replicas_peak << ", \"replicas_final\": " << n.replicas_final
       << ", \"scale_ups\": " << n.scale_ups << ", \"scale_downs\": " << n.scale_downs
       << ", \"busy_cycles\": " << n.busy_cycles
       << ", \"utilization\": " << fmt_fixed(n.utilization, 4) << ", \"ingress\": " << hop(n.ingress)
       << ", \"egress\": " << hop(n.egress) << "}" << (i + 1 < node_stats.size() ? "," : "")
       << "\n";
  }
  os << "  ],\n";
  os << "  \"verdict\": \"" << json_escape(verdict()) << "\"\n";
  os << "}";
  return os.str();
}

std::string ClusterReport::csv() const {
  std::ostringstream os;
  os << "id,class,node,arrival_cycle,delivery_cycle,dispatch_cycle,completion_cycle,"
        "response_cycle,shed,replica,batch_id,latency_cycles\n";
  for (const auto& o : outcomes) {
    const char* shed = o.shed == ClusterOutcome::Shed::kNone        ? "none"
                       : o.shed == ClusterOutcome::Shed::kOverflow ? "overflow"
                                                                   : "deadline";
    os << o.id << ',' << o.deadline_class << ',' << o.node << ',' << o.arrival_cycle << ','
       << o.delivery_cycle << ',' << o.dispatch_cycle << ',' << o.completion_cycle << ','
       << o.response_cycle << ',' << shed << ',' << o.replica << ',' << o.batch_id << ','
       << (o.shed == ClusterOutcome::Shed::kNone ? o.latency_cycles() : 0) << '\n';
  }
  return os.str();
}

}  // namespace dfc::cluster
