// Cluster-scale serving: a simulated multi-node fleet in front of the serve
// stack (ROADMAP north star — "a production-scale serving system for
// millions of users", built from the paper's scalable dataflow device).
//
// Topology: a front-end load balancer connected to N nodes by directed
// network hops (net_model.hpp — interlink-law bandwidth/latency/credits,
// cycles attributed via obs::LinkActivity). Each node hosts a pool of
// identical replicas; a replica is a single-device accelerator or a
// multi-board src/multifpga pipeline, reduced to a measured service-time
// table (service_table.hpp) exactly like src/serve reduces its replicas.
//
// The timeline is planned by plan_cluster — pure, single-threaded
// arithmetic over those tables, same load + config => byte-identical
// ClusterReport on any machine with any DFCNN_SWEEP_THREADS. Event ordering
// within one cycle is fixed (hence deterministic):
//   1. batch completions (responses take the egress hop; draining replicas
//      retire);
//   2. autoscaler evaluations, node index order;
//   3. front-end arrivals: admitted requests are routed (policy) and put on
//      the node's ingress hop;
//   4. ingress deliveries: admission control runs where the queue lives —
//      shed on queue overflow, then on a predicted SLO miss (deadline
//      class), cheapest-to-serve classes shed first under overload because
//      their deadlines bust first;
//   5. batch dispatch onto free active replicas, lowest node-local replica
//      index first (serve's rule).
// Ingress/egress latency >= 1 guarantees a delivery never lands in the
// cycle it was sent, the same argument that makes the lockstep multi-board
// executor order-independent (DESIGN.md §11).
//
// Load balancing policies are deterministic:
//   * round-robin   — requests cycle through nodes in index order;
//   * least-loaded  — reads each node's queue-depth + in-flight gauges from
//     the common/metrics registry (the same gauges the autoscaler watches);
//     ties break on the lowest node index;
//   * weighted      — smooth weighted round-robin over NodeConfig::weight
//     (each pick: add weights, take the largest current value, subtract the
//     total), which interleaves maximally and is deterministic.
//
// Autoscaling: per node, driven by the queue-depth gauge sampled every
// eval_interval_cycles. Depth per active replica above scale_up_depth adds
// a replica that becomes usable only after warmup_cycles (modeled bitstream
// load / weight push); below scale_down_depth drains the highest-index
// active replica (it finishes its in-flight batch, then retires). Warming
// replicas count towards capacity in the scale-up test and a cooldown
// separates actions, so a load step triggers one decisive action instead of
// a thrash train — the hysteresis property tests assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "core/builder.hpp"
#include "core/interlink.hpp"
#include "core/network_spec.hpp"
#include "cluster/cluster_stats.hpp"
#include "cluster/net_model.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"

namespace dfc::cluster {

enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,  ///< queue depth + in-flight via the metrics gauges
  kWeighted,     ///< smooth weighted round-robin over NodeConfig::weight
};

const char* route_policy_name(RoutePolicy p);

/// An SLO tier. Requests are assigned to classes by seeded weighted draw
/// (assign_classes); admission sheds a request when its predicted completion
/// would miss `deadline_cycles` (0 = best-effort: never deadline-shed).
struct DeadlineClass {
  std::string name = "default";
  std::uint64_t deadline_cycles = 0;
  std::uint32_t traffic_weight = 1;  ///< share of offered traffic
};

/// The standard three-tier mix used by the CLI and the reference scenario:
/// interactive 25k cycles (250 us), standard 100k, batch best-effort.
std::vector<DeadlineClass> default_deadline_classes();

struct NodeConfig {
  std::size_t boards = 1;    ///< devices per replica (>1 = multi-board)
  std::size_t replicas = 2;  ///< initial pool size; autoscaler floor
  std::size_t queue_capacity = 256;
  std::uint32_t weight = 1;  ///< kWeighted routing share
  HopModel ingress{};        ///< front end -> node
  HopModel egress{};         ///< node -> front end
};

struct AutoscalerConfig {
  bool enabled = true;
  std::size_t max_replicas = 6;  ///< ceiling per node (floor = NodeConfig::replicas)
  /// Queue depth per active replica that triggers a scale-up / allows a
  /// scale-down. Hysteresis needs up > down.
  double scale_up_depth = 8.0;
  double scale_down_depth = 1.0;
  std::uint64_t eval_interval_cycles = 10'000;
  /// Modeled provisioning cost (bitstream load + weight push): a new replica
  /// serves no batch until warmup_cycles after its scale-up event.
  std::uint64_t warmup_cycles = 100'000;
  /// Minimum gap between two autoscaler actions on the same node.
  std::uint64_t cooldown_cycles = 50'000;
};

struct ClusterConfig {
  std::vector<NodeConfig> nodes;
  RoutePolicy policy = RoutePolicy::kLeastLoaded;
  dfc::serve::BatcherPolicy batcher{};
  AutoscalerConfig autoscaler{};
  /// SLO tiers (empty = one best-effort class). Order is reporting order;
  /// convention: tightest deadline first.
  std::vector<DeadlineClass> classes;
  /// Request/response payload sizes in link words. Defaults model descriptor
  /// dispatch (images pre-staged node-side, like the serve image pool), so
  /// the fabric prices coordination, not bulk image movement.
  std::uint64_t request_words = 16;
  std::uint64_t response_words = 16;
  std::uint64_t class_seed = 23;  ///< seeded class assignment

  /// Inter-board link of multi-board replicas (feeds the measured table).
  dfc::core::InterLinkModel board_link{};
  dfc::core::BuildOptions build{};
  /// Optional external metrics sink (non-owning; must outlive the run).
  /// The planner registers cluster_node<i>_queue_depth / _inflight /
  /// _replicas_active gauges and routed/shed counters either way (an
  /// internal registry is used when null) — the least-loaded policy and the
  /// autoscaler read the gauges, they never peek at planner internals.
  dfc::MetricsRegistry* metrics = nullptr;

  void validate() const;
};

/// Seeded weighted class assignment for `count` requests (index = request
/// id). Deterministic per (classes, seed); an empty class list yields all
/// zeros (the implicit best-effort class).
std::vector<std::size_t> assign_classes(std::size_t count,
                                        const std::vector<DeadlineClass>& classes,
                                        std::uint64_t seed);

/// Plans the cluster timeline for `requests` (sorted by arrival, ids equal
/// to their index) with `class_of[id]` the request's deadline class and
/// `tables[node]` the node's measured service table (entry n-1 = cycles of
/// a size-n batch; every size up to the batcher max must be present). Pure
/// and single-threaded — the determinism anchor everything above rides on.
ClusterReport plan_cluster(const std::vector<dfc::serve::Request>& requests,
                           const std::vector<std::size_t>& class_of,
                           const ClusterConfig& config,
                           const std::vector<std::vector<std::uint64_t>>& tables);

/// Owns the measured service tables and runs complete load scenarios.
class Cluster {
 public:
  /// Measures one service table per distinct NodeConfig::boards value
  /// (single-device via ReplicaPool, multi-board via a lockstep
  /// MultiFpgaHarness — satellite of ISSUE 10: interlink timing lands in
  /// the planner's service times).
  Cluster(const dfc::core::NetworkSpec& spec, const ClusterConfig& config);

  /// Assigns classes, plans the timeline and fills the scenario labels.
  ClusterReport run(const dfc::serve::Load& load, const std::string& scenario_name,
                    const std::string& shape_name);

  const ClusterConfig& config() const { return config_; }
  /// The measured table node `i` plans with.
  const std::vector<std::uint64_t>& table(std::size_t node) const { return tables_.at(node); }

 private:
  dfc::core::NetworkSpec spec_;
  ClusterConfig config_;
  std::vector<std::vector<std::uint64_t>> tables_;  ///< per node
};

}  // namespace dfc::cluster
