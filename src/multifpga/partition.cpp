#include "multifpga/partition.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace dfc::mfpga {

using dfc::core::LayerSpec;
using dfc::core::LinkModel;
using dfc::core::NetworkSpec;

std::vector<dfc::hw::ResourceUsage> usage_per_device(
    const NetworkSpec& spec, const std::vector<std::size_t>& layer_device,
    std::size_t num_devices, const dfc::hw::CostModel& cost) {
  DFC_REQUIRE(layer_device.size() == spec.layers.size(),
              "layer_device must cover every layer");
  std::vector<dfc::hw::ResourceUsage> usage(num_devices);
  std::vector<bool> hosts_layer(num_devices, false);
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const std::size_t d = layer_device[i];
    DFC_REQUIRE(d < num_devices, "layer mapped to unknown device");
    usage[d] += dfc::hw::estimate_layer(spec.layers[i], cost);
    hosts_layer[d] = true;
  }
  for (std::size_t d = 0; d < num_devices; ++d) {
    usage[d].lut *= cost.lut_calibration;
    usage[d].ff *= cost.ff_calibration;
    if (hosts_layer[d]) usage[d] += cost.base_design;
  }
  return usage;
}

dse::TimingEstimate estimate_multi_timing(const NetworkSpec& spec,
                                          const std::vector<std::size_t>& layer_device,
                                          const LinkModel& link, int credits) {
  DFC_REQUIRE(layer_device.size() == spec.layers.size(),
              "layer_device must cover every layer");
  dse::TimingEstimate est = dse::estimate_timing(spec);

  // Sustained link rate: the serializer accepts one word per cycles_per_word
  // cycles, and a finite credit window caps throughput at `credits` words
  // per 2*latency round trip — whichever is slower binds.
  std::int64_t cycles_per_word = link.cycles_per_word;
  if (credits > 0) {
    cycles_per_word = std::max<std::int64_t>(
        cycles_per_word, dfc::ceil_div(2 * link.latency_cycles, credits));
  }

  // Insert a link stage for every device boundary: the crossing carries the
  // producing layer's full output volume per image, split over its ports.
  Shape3 shape = spec.input_shape;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    shape = dfc::core::layer_out_shape(spec.layers[i]);
    if (i + 1 < spec.layers.size() && layer_device[i + 1] != layer_device[i]) {
      const int ports = dfc::core::layer_out_ports(spec.layers[i]);
      dse::StageTiming st;
      st.name = "link" + std::to_string(i) + "->" + std::to_string(i + 1);
      st.cycles_per_image = dfc::ceil_div(shape.volume(), ports) * cycles_per_word;
      est.stages.push_back(st);
    }
  }
  est.interval_cycles = 0;
  for (std::size_t i = 0; i < est.stages.size(); ++i) {
    if (est.stages[i].cycles_per_image > est.interval_cycles) {
      est.interval_cycles = est.stages[i].cycles_per_image;
      est.bottleneck_stage = static_cast<std::int64_t>(i);
    }
  }
  return est;
}

MultiFpgaPlan partition_network(const NetworkSpec& spec,
                                const std::vector<dfc::hw::Device>& devices,
                                const LinkModel& link, const dfc::hw::CostModel& cost) {
  spec.validate();
  link.validate();
  const std::size_t layers = spec.layers.size();
  const std::size_t k = devices.size();
  DFC_REQUIRE(k >= 1, "need at least one device");

  // Enumerate contiguous assignments: cut positions are increasing indices;
  // devices are used in order (a pipeline flows forward across boards).
  // Represent as the first layer index of each segment s (segment s may be
  // empty, meaning the device is skipped).
  MultiFpgaPlan best;
  bool have_best = false;

  std::vector<std::size_t> cuts(k + 1, 0);
  cuts[k] = layers;

  // Recursive enumeration of monotone cut vectors.
  auto evaluate = [&](const std::vector<std::size_t>& cut) {
    std::vector<std::size_t> layer_device(layers);
    for (std::size_t d = 0; d < k; ++d) {
      for (std::size_t i = cut[d]; i < cut[d + 1]; ++i) layer_device[i] = d;
    }
    MultiFpgaPlan plan;
    plan.layer_device = layer_device;
    plan.device_usage = usage_per_device(spec, layer_device, k, cost);
    plan.device_fits.resize(k);
    plan.fits = true;
    for (std::size_t d = 0; d < k; ++d) {
      plan.device_fits[d] = devices[d].fits(plan.device_usage[d]);
      plan.fits = plan.fits && plan.device_fits[d];
    }
    if (!plan.fits) return;
    plan.timing = estimate_multi_timing(spec, layer_device, link);
    // Deterministic total order: best interval, then fewest devices, then
    // the lexicographically smallest assignment — so equal-quality plans
    // resolve identically no matter how the cut space is enumerated.
    const bool better =
        !have_best || plan.timing.interval_cycles < best.timing.interval_cycles ||
        (plan.timing.interval_cycles == best.timing.interval_cycles &&
         (plan.num_devices_used() < best.num_devices_used() ||
          (plan.num_devices_used() == best.num_devices_used() &&
           plan.layer_device < best.layer_device)));
    if (better) {
      best = std::move(plan);
      have_best = true;
    }
  };

  // Iterative odometer over cut[1..k-1] with cut monotone non-decreasing.
  std::vector<std::size_t> cut(k + 1, 0);
  cut[k] = layers;
  while (true) {
    bool monotone = true;
    for (std::size_t d = 1; d < k; ++d) monotone &= (cut[d] >= cut[d - 1]);
    if (monotone) evaluate(cut);
    // Advance odometer.
    std::size_t d = k - 1;
    while (d >= 1) {
      if (++cut[d] <= layers) break;
      cut[d] = 0;
      --d;
    }
    if (d == 0) break;
    if (k == 1) break;
  }
  if (k == 1) {
    std::vector<std::size_t> single(k + 1, 0);
    single[k] = layers;
    evaluate(single);
  }

  DFC_REQUIRE(have_best,
              "no contiguous partition of '" + spec.name + "' fits the given devices");
  return best;
}

MultiFpgaPlan partition_network_exact(const NetworkSpec& spec, std::size_t num_devices,
                                      const LinkModel& link, int credits,
                                      const dfc::hw::CostModel& cost) {
  spec.validate();
  link.validate();
  const std::size_t layers = spec.layers.size();
  DFC_REQUIRE(num_devices >= 1, "need at least one device");
  DFC_REQUIRE(num_devices <= layers,
              "cannot split " + std::to_string(layers) + " layer(s) of '" + spec.name +
                  "' across " + std::to_string(num_devices) + " devices");

  MultiFpgaPlan best;
  bool have_best = false;

  const auto evaluate = [&](const std::vector<std::size_t>& layer_device) {
    MultiFpgaPlan plan;
    plan.layer_device = layer_device;
    plan.device_usage = usage_per_device(spec, layer_device, num_devices, cost);
    plan.device_fits.assign(num_devices, true);  // fit is not a constraint here
    plan.fits = true;
    plan.timing = estimate_multi_timing(spec, layer_device, link, credits);
    const bool better =
        !have_best || plan.timing.interval_cycles < best.timing.interval_cycles ||
        (plan.timing.interval_cycles == best.timing.interval_cycles &&
         plan.layer_device < best.layer_device);
    if (better) {
      best = std::move(plan);
      have_best = true;
    }
  };

  // Strictly increasing interior cuts: cut[d] is the first layer of device
  // d+1, so every device hosts at least one layer.
  std::vector<std::size_t> cut(num_devices - 1);
  for (std::size_t d = 0; d + 1 < num_devices; ++d) cut[d] = d + 1;
  while (true) {
    std::vector<std::size_t> layer_device(layers, 0);
    std::size_t dev = 0;
    for (std::size_t i = 0; i < layers; ++i) {
      while (dev < cut.size() && i >= cut[dev]) ++dev;
      layer_device[i] = dev;
    }
    evaluate(layer_device);

    // Next strictly-increasing combination of interior cuts in 1..layers-1.
    std::size_t d = cut.size();
    while (d > 0) {
      --d;
      if (++cut[d] <= layers - (cut.size() - d)) {
        for (std::size_t e = d + 1; e < cut.size(); ++e) cut[e] = cut[e - 1] + 1;
        break;
      }
      if (d == 0) {
        DFC_CHECK(have_best, "partition_network_exact found no assignment");
        return best;
      }
    }
    if (cut.empty()) break;
  }
  DFC_CHECK(have_best, "partition_network_exact found no assignment");
  return best;
}

dfc::core::BuildOptions build_options_for(const MultiFpgaPlan& plan, const LinkModel& link) {
  dfc::core::BuildOptions opts;
  opts.layer_device = plan.layer_device;
  opts.link = link;
  return opts;
}

std::string MultiFpgaPlan::describe(const NetworkSpec& spec) const {
  std::ostringstream os;
  os << "multi-FPGA plan for '" << spec.name << "' (" << num_devices_used()
     << " device(s)):\n";
  for (std::size_t i = 0; i < layer_device.size(); ++i) {
    os << "  device " << layer_device[i] << " <- ["
       << i << "] " << dfc::core::layer_describe(spec.layers[i]) << "\n";
  }
  for (std::size_t d = 0; d < device_usage.size(); ++d) {
    os << "  device " << d << " usage: " << device_usage[d].str()
       << (device_fits[d] ? " (fits)" : " (DOES NOT FIT)") << "\n";
  }
  os << "  predicted interval: " << timing.interval_cycles << " cycles/image\n";
  return os.str();
}

}  // namespace dfc::mfpga
