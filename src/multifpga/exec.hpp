// Multi-FPGA execution: one simulated device per partition segment, joined
// by credit-based serial links (paper Sec. IV-C / VI future work, run for
// real instead of only priced).
//
// build_multi_fpga materialises a `layer_device` mapping as D independent
// SimContexts — each the full process/FIFO graph of its contiguous layer
// range, built with the same core::append_layer_segment the single-device
// builder uses — and connects consecutive devices with core/interlink
// Tx/wire/Rx triples, one per stream port crossing the boundary. The DMA
// source lives on the first device, the sink on the last, each with its own
// shared-bus arbiter (two boards do not share a DMA — which is exactly why a
// partitioned USPS design reaches the ideal 256-cycle interval the shared
// single-device bus holds at 266).
//
// MultiFpgaHarness mirrors AcceleratorHarness: it drives all device clocks
// in lockstep at one global cycle, converts watchdog trips into partial
// BatchResults (kTimeout/kDeadlock), and keeps the run fast by coordinating
// fast-forward across contexts — when every device is idle it jumps all of
// them to the earliest wake any device (or link endpoint) declares. With
// link latency >= 1 no flit crosses a boundary within the cycle it was sent,
// so lockstep stepping order is irrelevant and the partitioned run is
// bit-deterministic — logits are byte-identical to the single-device engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/harness.hpp"
#include "core/interlink.hpp"
#include "obs/activity.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace dfc::mfpga {

/// One simulated board: its own clock domain holding a contiguous layer
/// range [first_layer, last_layer) of the network.
struct DeviceSim {
  std::size_t device = 0;       ///< device index from layer_device
  std::size_t first_layer = 0;  ///< inclusive
  std::size_t last_layer = 0;   ///< exclusive
  std::unique_ptr<dfc::df::SimContext> ctx;
  std::unique_ptr<dfc::core::DmaBus> bus;  ///< only on DMA endpoint devices
  dfc::core::SegmentCores cores;
};

/// A built multi-device design. Raw pointers are stable views into the
/// per-device contexts, as in core::Accelerator.
struct MultiFpgaAccelerator {
  dfc::core::NetworkSpec spec;
  dfc::core::BuildOptions options;
  std::vector<std::size_t> layer_device;
  dfc::core::InterLinkModel link;

  std::vector<DeviceSim> devices;
  dfc::core::DmaSource* source = nullptr;  ///< on devices.front()
  dfc::core::DmaSink* sink = nullptr;      ///< on devices.back()

  std::vector<std::unique_ptr<dfc::core::InterLinkWire>> wires;
  std::vector<dfc::core::InterLinkTx*> txs;  ///< parallel to wires
  std::vector<dfc::core::InterLinkRx*> rxs;  ///< parallel to wires

  std::size_t device_count() const { return devices.size(); }

  /// Total flits delivered across all inter-device wires (this batch).
  std::uint64_t link_words_transferred() const;
};

/// Builds the partitioned design. `layer_device` must cover every layer and
/// be monotone non-decreasing (the design is a pipeline; layers never
/// migrate backwards). `options.link` is the serial-link timing model;
/// `link_credits` the Tx credit window (0 = auto, see InterLinkModel).
/// Every FIFO/process name is prefixed with "fpga<d>." where d is the
/// owning device's index, so per-device traces and fault targets stay
/// unambiguous when merged.
MultiFpgaAccelerator build_multi_fpga(const dfc::core::NetworkSpec& spec,
                                      const std::vector<std::size_t>& layer_device,
                                      const dfc::core::BuildOptions& options = {},
                                      int link_credits = 0);

/// Lockstep batch harness over a MultiFpgaAccelerator. Reuses the
/// single-device BatchResult (statuses, steady-interval metrics) so
/// measurement code is engine-agnostic.
class MultiFpgaHarness {
 public:
  explicit MultiFpgaHarness(MultiFpgaAccelerator acc);

  /// Streams the whole batch back to back through the partitioned pipeline.
  /// Exhausting `max_cycles` or a global idle window returns a partial
  /// BatchResult with status kTimeout/kDeadlock, like AcceleratorHarness.
  dfc::core::BatchResult run_batch(
      const std::vector<Tensor>& images,
      std::uint64_t max_cycles = dfc::df::SimContext::kDefaultMaxCycles);

  /// Single-image convenience returning the logits; throws if incomplete.
  std::vector<float> run_image(const Tensor& image);

  MultiFpgaAccelerator& accelerator() { return acc_; }
  const dfc::core::NetworkSpec& spec() const { return acc_.spec; }
  std::size_t device_count() const { return acc_.devices.size(); }
  dfc::df::SimContext& device_context(std::size_t d) { return *acc_.devices.at(d).ctx; }

  /// Consecutive all-device-idle cycles tolerated before kDeadlock.
  void set_idle_limit(std::uint64_t cycles) { idle_limit_ = cycles; }

  /// Looks a FIFO up by its (fpga-prefixed) name across all devices.
  dfc::df::FifoBase* find_fifo(const std::string& name);

  /// Per-device FIFO occupancy/stall report plus per-wire transfer counts.
  std::string fifo_report() const;

  /// Attaches one fresh TraceSink per device (sinks.size() must equal
  /// device_count()); entity names carry the fpga<d>. prefix, so merged
  /// traces keep per-device track names. Pass empty sinks again after
  /// detach_traces() to re-trace.
  void attach_traces(const std::vector<obs::TraceSink*>& sinks);
  void detach_traces();

  /// Per-link cycle attribution: classifies every global cycle of the next
  /// run_batch into credit_stall / wire_busy / rx_backpressure / idle per
  /// wire (see obs::LinkState). Classification reads start-of-cycle state —
  /// lockstep-stable, so the splits are byte-identical across thread counts
  /// — and the buckets sum exactly to link_observed_cycles(). While enabled,
  /// coordinated fast-forward is suppressed (like SimContext observation) so
  /// no cycle escapes classification.
  void set_link_attribution(bool on) { link_attr_ = on || link_trace_ != nullptr; }
  bool link_attribution() const { return link_attr_; }

  /// Attaches a sink for kLinkState/kLinkCredits events (one kLink entity
  /// per wire, registered on attach); implies link attribution. The sink may
  /// be merged with per-device sinks via merge_traces for the cross-board
  /// Perfetto view.
  void attach_link_trace(obs::TraceSink* sink);
  void detach_link_trace();

  /// Attribution results for wire `i` (parallel to accelerator().wires),
  /// accumulated over the cycles of the last run_batch.
  const obs::LinkActivity& link_activity(std::size_t i) const {
    return trackers_.at(i).counts();
  }
  /// Global cycles classified during the last run_batch (0 when attribution
  /// was off). Every classified cycle lands in exactly one bucket per link.
  std::uint64_t link_observed_cycles() const { return link_cycles_; }

  /// Arms/disarms checksum+sequence integrity guards on every FIFO of every
  /// device (link ingress FIFOs included — the fault subsystem's detection
  /// surface for inter-FPGA transfers).
  void enable_integrity_guards(dfc::df::FaultListener* listener, float range_bound);
  void disable_integrity_guards();

  /// Resets every device context, wire and per-batch FIFO statistic.
  void reset();

 private:
  dfc::core::BatchResult collect(std::size_t requested) const;
  void classify_links(std::uint64_t now);

  MultiFpgaAccelerator acc_;
  std::uint64_t idle_limit_ = 100'000;

  bool link_attr_ = false;
  obs::TraceSink* link_trace_ = nullptr;
  std::vector<std::uint32_t> link_ids_;      ///< entity ids in link_trace_
  std::vector<obs::LinkTracker> trackers_;   ///< parallel to acc_.wires
  std::uint64_t link_cycles_ = 0;
};

/// Merges per-device trace sinks (recorded in lockstep, so cycle stamps are
/// directly comparable) into `out`: entities are re-registered in device
/// order and events appended with remapped ids. The Perfetto exporter
/// indexes events per entity, so per-sink concatenation order is exactly as
/// valid as single-context record order.
void merge_traces(const std::vector<const obs::TraceSink*>& sinks, obs::TraceSink& out);

}  // namespace dfc::mfpga
