// Multi-FPGA partitioning of a network design (paper future work, Sec. IV-C
// and VI: "investigate scalability by implementing bigger networks on a
// multi-FPGA system").
//
// A partition assigns each layer to one device; consecutive layers on
// different devices communicate through LinkChannels (core/link.hpp). The
// partitioner enumerates contiguous splits (layers never migrate backwards —
// the design is a pipeline), prices each segment with the hwmodel estimator,
// includes one base design (MicroBlaze/DMA shell) per device, and picks the
// split that fits all devices with the best predicted throughput (link
// bandwidth included).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.hpp"
#include "core/network_spec.hpp"
#include "dse/throughput_model.hpp"
#include "hwmodel/cost_model.hpp"

namespace dfc::mfpga {

struct MultiFpgaPlan {
  std::vector<std::size_t> layer_device;               ///< device per layer
  std::vector<dfc::hw::ResourceUsage> device_usage;    ///< calibrated, incl. base
  std::vector<bool> device_fits;
  dse::TimingEstimate timing;  ///< with link stages inserted
  bool fits = false;

  std::size_t num_devices_used() const {
    return layer_device.empty()
               ? 0
               : *std::max_element(layer_device.begin(), layer_device.end()) + 1;
  }
  std::string describe(const dfc::core::NetworkSpec& spec) const;
};

/// Resource usage of each device under a given assignment (calibrated,
/// including one base design per device that hosts at least one layer).
std::vector<dfc::hw::ResourceUsage> usage_per_device(
    const dfc::core::NetworkSpec& spec, const std::vector<std::size_t>& layer_device,
    std::size_t num_devices, const dfc::hw::CostModel& cost = {});

/// Timing estimate with inter-FPGA link stages for boundary crossings.
/// `credits > 0` models a credit-limited link (core/interlink): the
/// sustained rate is one word per max(cycles_per_word,
/// ceil(2*latency/credits)) cycles, since at most `credits` words fit in a
/// credit round trip. 0 means an unconstrained (auto-sized) window, i.e.
/// the serializer rate alone.
dse::TimingEstimate estimate_multi_timing(const dfc::core::NetworkSpec& spec,
                                          const std::vector<std::size_t>& layer_device,
                                          const dfc::core::LinkModel& link,
                                          int credits = 0);

/// Finds the best contiguous partition of `spec` over `devices` (in pipeline
/// order). Throws ConfigError if no contiguous split fits. Ties (equal
/// predicted interval and device count) break on the lexicographically
/// smallest layer_device vector, so results are deterministic and
/// independent of enumeration order.
MultiFpgaPlan partition_network(const dfc::core::NetworkSpec& spec,
                                const std::vector<dfc::hw::Device>& devices,
                                const dfc::core::LinkModel& link = {},
                                const dfc::hw::CostModel& cost = {});

/// Best contiguous partition using *exactly* `num_devices` devices, each
/// hosting at least one layer, ignoring resource fit (for scaling studies
/// and tests that force a device count regardless of utilisation). Same
/// objective and deterministic tie-breaking as partition_network. Throws
/// ConfigError when num_devices exceeds the layer count.
MultiFpgaPlan partition_network_exact(const dfc::core::NetworkSpec& spec,
                                      std::size_t num_devices,
                                      const dfc::core::LinkModel& link = {},
                                      int credits = 0,
                                      const dfc::hw::CostModel& cost = {});

/// Convenience: BuildOptions carrying the plan's device mapping.
dfc::core::BuildOptions build_options_for(const MultiFpgaPlan& plan,
                                          const dfc::core::LinkModel& link = {});

}  // namespace dfc::mfpga
