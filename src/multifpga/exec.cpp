#include "multifpga/exec.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/preflight.hpp"
#include "verify/diagnostics.hpp"

namespace dfc::mfpga {

using dfc::axis::Flit;
using dfc::core::BatchResult;
using dfc::core::RunStatus;
using dfc::df::Fifo;
using dfc::df::SimContext;

namespace {

// Lockstepped contexts must never trip their private idle watchdogs (the
// harness owns the global one) nor clamp a coordinated fast-forward jump
// shorter than the common target — both would desynchronise the clocks.
constexpr std::uint64_t kDeviceIdleLimit = 1'000'000'000'000ULL;

std::string device_prefix(std::size_t d) { return "fpga" + std::to_string(d) + "."; }

}  // namespace

std::uint64_t MultiFpgaAccelerator::link_words_transferred() const {
  std::uint64_t total = 0;
  for (const auto& w : wires) total += w->words_transferred();
  return total;
}

MultiFpgaAccelerator build_multi_fpga(const dfc::core::NetworkSpec& spec,
                                      const std::vector<std::size_t>& layer_device,
                                      const dfc::core::BuildOptions& options,
                                      int link_credits) {
  dfc::core::run_multi_preflight(spec, layer_device, options, link_credits);
  spec.validate();
  if (layer_device.size() != spec.layers.size()) {
    throw dfc::verify::VerifyError(
        {dfc::verify::Code::DF403, "partition",
         "layer_device has " + std::to_string(layer_device.size()) + " entries for " +
             std::to_string(spec.layers.size()) + " layer(s)"});
  }
  for (std::size_t i = 1; i < layer_device.size(); ++i) {
    if (layer_device[i] < layer_device[i - 1]) {
      throw dfc::verify::VerifyError(
          {dfc::verify::Code::DF403, "L" + std::to_string(i),
           "device assignment goes backwards (" + std::to_string(layer_device[i - 1]) + " -> " +
               std::to_string(layer_device[i]) + "); the design is a forward pipeline"});
    }
  }

  MultiFpgaAccelerator acc;
  acc.spec = spec;
  acc.options = options;
  acc.layer_device = layer_device;
  acc.link = dfc::core::InterLinkModel{options.link, link_credits};
  acc.link.validate();

  // One DeviceSim per maximal same-device layer run, in pipeline order.
  std::size_t li = 0;
  while (li < spec.layers.size()) {
    std::size_t seg_end = li + 1;
    while (seg_end < spec.layers.size() && layer_device[seg_end] == layer_device[li]) {
      ++seg_end;
    }
    DeviceSim dev;
    dev.device = acc.devices.size();
    dev.first_layer = li;
    dev.last_layer = seg_end;
    dev.ctx = std::make_unique<SimContext>();
    dev.ctx->set_idle_limit(kDeviceIdleLimit);
    acc.devices.push_back(std::move(dev));
    li = seg_end;
  }

  const std::size_t num_devices = acc.devices.size();
  DeviceSim& first = acc.devices.front();

  // DMA MM2S endpoint on the first device (its own bus arbiter: boards do
  // not share a DMA; when the design collapses to one device the source and
  // sink contend on that single bus exactly like the single-device builder).
  if (options.dma_shared_bus) {
    first.bus = std::make_unique<dfc::core::DmaBus>(options.dma_cycles_per_word);
  }
  auto& dma_in = first.ctx->add_fifo<Flit>(device_prefix(0) + "dma.in",
                                           options.stream_fifo_capacity);
  acc.source = &first.ctx->add_process<dfc::core::DmaSource>(
      device_prefix(0) + "dma.source", dma_in, spec.input_shape, options.dma_cycles_per_word,
      first.bus.get());
  if (first.bus) first.bus->attach_source(acc.source);

  dfc::core::SegmentStreams cur{{&dma_in}, spec.input_shape};

  for (std::size_t d = 0; d < num_devices; ++d) {
    DeviceSim& dev = acc.devices[d];
    if (d > 0) {
      // Boundary crossing: one Tx/wire/Rx triple per stream port. The Tx
      // drains the upstream segment's output FIFO; the Rx fills a fresh
      // ingress FIFO on this device.
      DeviceSim& up = acc.devices[d - 1];
      const std::string lname = "L" + std::to_string(dev.first_layer);
      std::vector<Fifo<Flit>*> linked;
      linked.reserve(cur.streams.size());
      for (std::size_t p = 0; p < cur.streams.size(); ++p) {
        auto wire = std::make_unique<dfc::core::InterLinkWire>(
            lname + ".wire" + std::to_string(p), acc.link);
        auto& ingress = dev.ctx->add_fifo<Flit>(
            device_prefix(d) + lname + ".xfpga" + std::to_string(p),
            options.stream_fifo_capacity);
        auto& tx = up.ctx->add_process<dfc::core::InterLinkTx>(
            device_prefix(d - 1) + lname + ".tx" + std::to_string(p), *cur.streams[p], *wire);
        auto& rx = dev.ctx->add_process<dfc::core::InterLinkRx>(
            device_prefix(d) + lname + ".rx" + std::to_string(p), *wire, ingress);
        wire->bind(&tx, &rx);
        acc.txs.push_back(&tx);
        acc.rxs.push_back(&rx);
        acc.wires.push_back(std::move(wire));
        linked.push_back(&ingress);
      }
      cur.streams = std::move(linked);
    }
    cur = dfc::core::append_layer_segment(*dev.ctx, spec, dev.first_layer, dev.last_layer,
                                          std::move(cur), options, device_prefix(d),
                                          dev.cores);
  }

  // DMA S2MM endpoint on the last device.
  DeviceSim& last = acc.devices.back();
  if (options.dma_shared_bus && num_devices > 1) {
    last.bus = std::make_unique<dfc::core::DmaBus>(options.dma_cycles_per_word);
  }
  const std::string sink_prefix = device_prefix(num_devices - 1);
  cur.streams = dfc::core::adapt_stream_ports(*last.ctx, sink_prefix + "dma",
                                              std::move(cur.streams), cur.shape.c, 1,
                                              options.stream_fifo_capacity);
  acc.sink = &last.ctx->add_process<dfc::core::DmaSink>(
      sink_prefix + "dma.sink", *cur.streams[0], cur.shape.volume(),
      options.dma_cycles_per_word, last.bus.get());
  if (last.bus) last.bus->attach_sink(acc.sink);
  return acc;
}

MultiFpgaHarness::MultiFpgaHarness(MultiFpgaAccelerator acc) : acc_(std::move(acc)) {
  trackers_.resize(acc_.wires.size());
}

void MultiFpgaHarness::reset() {
  for (auto& dev : acc_.devices) {
    dev.ctx->reset();
    dev.ctx->reset_fifo_stats();
  }
  for (auto& w : acc_.wires) w->reset();
  for (auto& t : trackers_) t.reset();
  link_cycles_ = 0;
}

dfc::df::FifoBase* MultiFpgaHarness::find_fifo(const std::string& name) {
  for (auto& dev : acc_.devices) {
    if (dfc::df::FifoBase* f = dev.ctx->find_fifo(name)) return f;
  }
  return nullptr;
}

std::string MultiFpgaHarness::fifo_report() const {
  std::string report;
  for (const auto& dev : acc_.devices) {
    report += "device " + std::to_string(dev.device) + " (layers " +
              std::to_string(dev.first_layer) + ".." + std::to_string(dev.last_layer - 1) +
              "):\n" + dev.ctx->fifo_report();
  }
  const std::uint64_t now = acc_.devices.front().ctx->cycle();
  if (!acc_.wires.empty()) {
    report += "interlink channels (" + std::to_string(acc_.wires.size()) + " wires):\n";
  }
  auto fifo_line = [](const char* role, const dfc::df::FifoBase& f) {
    const dfc::df::FifoStats& st = f.lifetime_stats();
    return std::string("    ") + role + " " + f.name() + ": " + std::to_string(f.size()) +
           "/" + std::to_string(f.capacity()) + " (pushes=" + std::to_string(st.pushes) +
           " pops=" + std::to_string(st.pops) + " max=" + std::to_string(st.max_occupancy) +
           " full_stalls=" + std::to_string(st.full_stall_cycles) +
           " empty_stalls=" + std::to_string(st.empty_stall_cycles) + ")\n";
  };
  for (std::size_t i = 0; i < acc_.wires.size(); ++i) {
    const auto& w = *acc_.wires[i];
    report += "  wire " + w.name() + ": words=" + std::to_string(w.words_transferred()) +
              " credits=" + std::to_string(w.credits_available(now)) + "/" +
              std::to_string(w.model().effective_credits()) +
              " tx_credit_stalls=" + std::to_string(acc_.txs[i]->credit_stall_cycles()) +
              (w.idle(now) ? "" : " (in flight)") + "\n";
    // The boundary FIFOs either side of the wire, with the same stall columns
    // as the per-device tables: the Tx drains the upstream egress FIFO, the
    // Rx fills the downstream ingress FIFO.
    report += fifo_line("tx_fifo", acc_.txs[i]->input());
    report += fifo_line("rx_fifo", acc_.rxs[i]->output());
  }
  if (link_cycles_ > 0) {
    report += "interlink attribution (" + std::to_string(link_cycles_) + " cycles):\n";
    for (std::size_t i = 0; i < acc_.wires.size(); ++i) {
      const obs::LinkActivity& a = trackers_[i].counts();
      report += "  " + acc_.wires[i]->name() + ": wire_busy=" + std::to_string(a.wire_busy) +
                " credit_stall=" + std::to_string(a.credit_stall) +
                " rx_backpressure=" + std::to_string(a.rx_backpressure) +
                " idle=" + std::to_string(a.idle) + "\n";
    }
  }
  return report;
}

void MultiFpgaHarness::attach_traces(const std::vector<obs::TraceSink*>& sinks) {
  DFC_REQUIRE(sinks.size() == acc_.devices.size(),
              "attach_traces needs exactly one sink per device");
  for (std::size_t d = 0; d < sinks.size(); ++d) {
    acc_.devices[d].ctx->attach_trace(sinks[d]);
  }
}

void MultiFpgaHarness::detach_traces() {
  for (auto& dev : acc_.devices) dev.ctx->attach_trace(nullptr);
}

void MultiFpgaHarness::attach_link_trace(obs::TraceSink* sink) {
  DFC_REQUIRE(sink != nullptr, "attach_link_trace needs a sink (detach_link_trace to stop)");
  DFC_REQUIRE(link_trace_ == nullptr, "a link trace sink is already attached");
  link_trace_ = sink;
  link_ids_.clear();
  link_ids_.reserve(acc_.wires.size());
  for (const auto& w : acc_.wires) {
    link_ids_.push_back(sink->register_entity(w->name(), obs::EntityKind::kLink));
  }
  link_attr_ = true;
}

void MultiFpgaHarness::detach_link_trace() {
  link_trace_ = nullptr;
  link_ids_.clear();
}

void MultiFpgaHarness::classify_links(std::uint64_t now) {
  for (std::size_t i = 0; i < acc_.wires.size(); ++i) {
    const dfc::core::InterLinkWire& wire = *acc_.wires[i];
    const dfc::core::InterLinkTx& tx = *acc_.txs[i];
    const dfc::core::InterLinkRx& rx = *acc_.rxs[i];
    const int credits = wire.credits_available(now);

    // Priority rx_backpressure > credit_stall > wire_busy: exactly one bucket
    // per cycle, so the per-link splits sum to link_observed_cycles().
    obs::LinkState s = obs::LinkState::kIdle;
    if (rx.backpressured(now)) {
      s = obs::LinkState::kRxBackpressure;
    } else if (tx.wants_send(now) && credits <= 0) {
      s = obs::LinkState::kCreditStall;
    } else if (tx.wants_send(now) || tx.serializing(now) || wire.has_data()) {
      s = obs::LinkState::kWireBusy;
    }
    obs::TraceSink* trace = link_trace_;
    const std::uint32_t id = link_ids_.empty() ? 0 : link_ids_[i];
    trackers_[i].tick(s, now, trace, id);
    trackers_[i].credits(static_cast<std::uint32_t>(credits < 0 ? 0 : credits), now, trace, id);
  }
  ++link_cycles_;
}

void MultiFpgaHarness::enable_integrity_guards(dfc::df::FaultListener* listener,
                                               float range_bound) {
  for (auto& dev : acc_.devices) dev.ctx->enable_integrity_guards(listener, range_bound);
}

void MultiFpgaHarness::disable_integrity_guards() {
  for (auto& dev : acc_.devices) dev.ctx->disable_integrity_guards();
}

BatchResult MultiFpgaHarness::collect(std::size_t requested) const {
  BatchResult r;
  r.start_cycle = 0;
  r.requested = requested;
  r.inject_cycles = acc_.source->inject_cycles();
  r.completion_cycles = acc_.sink->completion_cycles();
  r.outputs = acc_.sink->outputs();
  r.end_cycle = r.completion_cycles.empty() ? 0 : r.completion_cycles.back();
  return r;
}

BatchResult MultiFpgaHarness::run_batch(const std::vector<Tensor>& images,
                                        std::uint64_t max_cycles) {
  DFC_REQUIRE(!images.empty(), "run_batch needs at least one image");
  reset();
  for (const Tensor& img : images) acc_.source->enqueue(img);
  const std::size_t want = images.size();

  RunStatus status = RunStatus::kOk;
  std::string error;
  std::uint64_t global_idle = 0;

  while (acc_.sink->images_completed() < want) {
    const std::uint64_t now = acc_.devices.front().ctx->cycle();
    if (now >= max_cycles) {
      status = RunStatus::kTimeout;
      error = "multi-FPGA run exceeded " + std::to_string(max_cycles) + " cycles\n" +
              fifo_report();
      break;
    }

    // Link attribution reads the start-of-cycle Tx/wire/Rx state: it is the
    // same on every lockstep schedule, and classifying before the step means
    // one classification per global cycle actually executed.
    if (link_attr_) classify_links(now);

    // One global cycle: every device steps once. Link latency >= 1
    // guarantees nothing sent this cycle is visible before the next, so the
    // order of this loop cannot influence results.
    bool any_active = false;
    for (auto& dev : acc_.devices) {
      dev.ctx->step();
      if (dev.ctx->idle_cycles() == 0) any_active = true;
    }
    global_idle = any_active ? 0 : global_idle + 1;
    if (global_idle > idle_limit_) {
      status = RunStatus::kDeadlock;
      error = "deadlock: no FIFO activity on any device for " + std::to_string(global_idle) +
              " cycles at cycle " + std::to_string(acc_.devices.front().ctx->cycle()) + "\n" +
              fifo_report();
      break;
    }
    if (!any_active && !link_attr_) {
      // Coordinated fast-forward: only jump when every device can, and only
      // to a cycle no device (or link endpoint, via the Tx/Rx wake hints)
      // wants to act before. Clamped so the global watchdog and the cycle
      // budget fire at exactly the cycles lockstep stepping would reach.
      std::uint64_t target = dfc::df::Process::kNeverWake;
      bool can_jump = true;
      for (auto& dev : acc_.devices) {
        const std::uint64_t wake = dev.ctx->fast_forward_candidate();
        if (wake == 0) {
          can_jump = false;
          break;
        }
        target = std::min(target, wake);
      }
      if (can_jump) {
        const std::uint64_t here = acc_.devices.front().ctx->cycle();
        const std::uint64_t idle_left =
            idle_limit_ >= global_idle ? idle_limit_ - global_idle + 1 : 0;
        if (idle_left < target - here) target = here + idle_left;
        if (max_cycles < target) target = max_cycles;
        if (target > here) {
          for (auto& dev : acc_.devices) {
            dev.ctx->fast_forward(target);
            DFC_ASSERT(dev.ctx->cycle() == target,
                       "multi-FPGA fast-forward desynchronised device clocks");
          }
          global_idle += target - here;
          if (global_idle > idle_limit_) {
            status = RunStatus::kDeadlock;
            error = "deadlock: no FIFO activity on any device for " +
                    std::to_string(global_idle) + " cycles at cycle " +
                    std::to_string(target) + "\n" + fifo_report();
            break;
          }
        }
      }
    }
  }

  BatchResult r = collect(images.size());
  r.status = status;
  r.error = std::move(error);
  if (!r.ok()) r.end_cycle = acc_.devices.front().ctx->cycle();
  return r;
}

std::vector<float> MultiFpgaHarness::run_image(const Tensor& image) {
  const BatchResult r = run_batch({image});
  DFC_CHECK(r.ok(), std::string("run_image did not complete: ") +
                        dfc::core::run_status_name(r.status));
  return r.outputs.front();
}

void merge_traces(const std::vector<const obs::TraceSink*>& sinks, obs::TraceSink& out) {
  DFC_REQUIRE(out.entities().empty() && out.events().empty(),
              "merge_traces needs a fresh output sink");
  std::vector<std::uint32_t> base;
  base.reserve(sinks.size());
  for (const obs::TraceSink* sink : sinks) {
    base.push_back(static_cast<std::uint32_t>(out.entities().size()));
    for (const obs::TraceEntity& e : sink->entities()) {
      out.register_entity(e.name, e.kind, e.capacity);
    }
  }
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    for (const obs::TraceEvent& ev : sinks[i]->events()) {
      out.record(ev.entity + base[i], ev.kind, ev.cycle, ev.value);
    }
  }
}

}  // namespace dfc::mfpga
